//! Drivers for Figures 4 and 5: static selective-ways versus selective-sets
//! (and, via the same machinery, the hybrid organization of Figure 6).

use rescache_trace::AppProfile;

use crate::error::CoreError;
use crate::experiment::parallel::parallel_map;
use crate::experiment::report::mean;
use crate::experiment::runner::Runner;
use crate::org::Organization;
use crate::system::{ResizableCacheSide, SystemConfig};

/// One bar of Figure 4 / Figure 6: the mean energy-delay reduction of one
/// organization at one base associativity.
#[derive(Debug, Clone, PartialEq)]
pub struct OrgAssocPoint {
    /// Base L1 associativity.
    pub associativity: u32,
    /// Resizing organization.
    pub organization: Organization,
    /// Which L1 cache was resized.
    pub side: ResizableCacheSide,
    /// Mean (over applications) reduction of the processor energy-delay
    /// product, in percent.
    pub mean_edp_reduction: f64,
    /// Mean (over applications) reduction of the cache size, in percent.
    pub mean_size_reduction: f64,
    /// Per-application energy-delay reductions, in the order of `apps`.
    pub per_app_edp_reduction: Vec<f64>,
}

/// One pair of bars of Figure 5: per-application size and energy-delay
/// reduction of one organization.
#[derive(Debug, Clone, PartialEq)]
pub struct PerAppOrgRow {
    /// Application name.
    pub app: String,
    /// Resizing organization.
    pub organization: Organization,
    /// Reduction of the average cache size, in percent.
    pub size_reduction: f64,
    /// Reduction of the processor energy-delay product, in percent.
    pub edp_reduction: f64,
    /// Execution-time increase of the chosen configuration, in percent.
    pub slowdown: f64,
}

/// Figure 4 (and Figure 6 when `organizations` includes the hybrid):
/// sweeps base associativities and reports the mean energy-delay reduction
/// each organization achieves with static resizing of `side`, on the
/// out-of-order base processor.
///
/// Organizations that are inapplicable at a given associativity (e.g.
/// selective-ways on a direct-mapped cache) are skipped silently; the paper
/// only evaluates meaningful combinations.
///
/// # Errors
///
/// Returns an error only if an applicable combination fails to enumerate its
/// configuration space, which indicates an invalid base cache configuration.
pub fn organization_vs_associativity(
    runner: &Runner,
    apps: &[AppProfile],
    associativities: &[u32],
    organizations: &[Organization],
    side: ResizableCacheSide,
) -> Result<Vec<OrgAssocPoint>, CoreError> {
    let mut points = Vec::new();
    for &assoc in associativities {
        let system = SystemConfig::with_l1(32 * 1024, assoc);
        for &org in organizations {
            // Skip inapplicable combinations up front.
            let cache_cfg = side.config_of(&system.hierarchy);
            if crate::org::ConfigSpace::enumerate(cache_cfg, org).is_err() {
                continue;
            }
            let outcomes = parallel_map(apps, |app| {
                runner
                    .static_best(app, &system, org, side)
                    .expect("applicability checked above")
            });
            let reductions: Vec<f64> = outcomes
                .iter()
                .map(|o| o.best.edp_reduction_percent)
                .collect();
            let sizes: Vec<f64> = outcomes
                .iter()
                .map(|o| o.best.size_reduction_percent)
                .collect();
            points.push(OrgAssocPoint {
                associativity: assoc,
                organization: org,
                side,
                mean_edp_reduction: mean(&reductions),
                mean_size_reduction: mean(&sizes),
                per_app_edp_reduction: reductions,
            });
        }
    }
    Ok(points)
}

/// Figure 5: per-application comparison of static selective-ways and
/// selective-sets for a 32K 4-way L1 on the base out-of-order processor.
///
/// # Errors
///
/// Returns an error if an organization cannot be applied to the 4-way cache
/// (it can; both organizations are applicable at 4-way).
pub fn per_app_org_comparison(
    runner: &Runner,
    apps: &[AppProfile],
    associativity: u32,
    organizations: &[Organization],
    side: ResizableCacheSide,
) -> Result<Vec<PerAppOrgRow>, CoreError> {
    let system = SystemConfig::with_l1(32 * 1024, associativity);
    let mut rows = Vec::new();
    for &org in organizations {
        let outcomes = parallel_map(apps, |app| runner.static_best(app, &system, org, side));
        for outcome in outcomes {
            let outcome = outcome?;
            rows.push(PerAppOrgRow {
                app: outcome.app.clone(),
                organization: org,
                size_reduction: outcome.best.size_reduction_percent,
                edp_reduction: outcome.best.edp_reduction_percent,
                slowdown: outcome.best.slowdown_percent,
            });
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::runner::RunnerConfig;
    use rescache_trace::spec;

    fn tiny_runner() -> Runner {
        Runner::new(RunnerConfig {
            warmup_instructions: 4_000,
            measure_instructions: 12_000,
            trace_seed: 7,
            dynamic_interval: 1_024,
            ..RunnerConfig::fast()
        })
    }

    #[test]
    fn assoc_sweep_produces_one_point_per_combination() {
        let runner = tiny_runner();
        let apps = vec![spec::ammp(), spec::m88ksim()];
        let points = organization_vs_associativity(
            &runner,
            &apps,
            &[2, 4],
            &[Organization::SelectiveWays, Organization::SelectiveSets],
            ResizableCacheSide::Data,
        )
        .unwrap();
        assert_eq!(points.len(), 4);
        for p in &points {
            assert_eq!(p.per_app_edp_reduction.len(), 2);
            assert!(p.mean_size_reduction >= 0.0);
        }
    }

    #[test]
    fn small_working_sets_prefer_selective_sets_at_low_associativity() {
        // ammp and m88ksim have ~2-3K working sets: at 2-way, selective-sets
        // can reach 2K while selective-ways stops at 16K, so the sets
        // organization must save clearly more energy-delay.
        let runner = tiny_runner();
        let apps = vec![spec::ammp(), spec::m88ksim()];
        let points = organization_vs_associativity(
            &runner,
            &apps,
            &[2],
            &[Organization::SelectiveWays, Organization::SelectiveSets],
            ResizableCacheSide::Data,
        )
        .unwrap();
        let ways = points
            .iter()
            .find(|p| p.organization == Organization::SelectiveWays)
            .unwrap();
        let sets = points
            .iter()
            .find(|p| p.organization == Organization::SelectiveSets)
            .unwrap();
        assert!(
            sets.mean_edp_reduction > ways.mean_edp_reduction,
            "selective-sets ({:.1}%) should beat selective-ways ({:.1}%) at 2-way",
            sets.mean_edp_reduction,
            ways.mean_edp_reduction
        );
    }

    #[test]
    fn per_app_rows_cover_every_app_and_org() {
        let runner = tiny_runner();
        let apps = vec![spec::ammp(), spec::compress()];
        let rows = per_app_org_comparison(
            &runner,
            &apps,
            4,
            &[Organization::SelectiveWays, Organization::SelectiveSets],
            ResizableCacheSide::Data,
        )
        .unwrap();
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().any(|r| r.app == "ammp"));
        assert!(rows.iter().any(|r| r.app == "compress"));
    }

    #[test]
    fn inapplicable_direct_mapped_ways_is_skipped() {
        let runner = tiny_runner();
        let apps = vec![spec::ammp()];
        let points = organization_vs_associativity(
            &runner,
            &apps,
            &[1],
            &[Organization::SelectiveWays, Organization::SelectiveSets],
            ResizableCacheSide::Data,
        )
        .unwrap();
        assert_eq!(
            points.len(),
            1,
            "only selective-sets applies to a direct-mapped cache"
        );
        assert_eq!(points[0].organization, Organization::SelectiveSets);
    }
}
