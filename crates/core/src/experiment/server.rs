//! The sweep service: a multi-threaded JSON-lines request server over the
//! shared store/memo tier — the ROADMAP's "millions of users" direction made
//! concrete.
//!
//! The [`Runner`] + [`SharedTier`](crate::experiment::SharedTier) already
//! behave like a cache tier: traces and static simulations are single-flight
//! memos shared by every clone. This module wraps them in a long-lived
//! [`TcpListener`] front end (std-only — the container builds offline, so no
//! tokio, no serde; the protocol uses the hand-rolled [`crate::json`]
//! module) so many concurrent clients share one tier:
//!
//! * every connection gets its own thread (finished threads are reaped each
//!   accept, and the live count is reported in `health`), and a `sweep`
//!   request shards its configuration space across [`effective_workers`]
//!   worker threads, streaming each point's result line back as it
//!   completes;
//! * a `dynamic` request runs the paper's miss-ratio resizing controller
//!   over the wire: every resize the controller performs streams back as a
//!   `kind:"resize"` line while the simulation runs, then a `kind:"done"`
//!   line carries the measurement;
//! * a streaming sweep is cancellable mid-flight — an interleaved
//!   `{"req":"cancel","id":...}` naming the sweep's id (or the client
//!   disconnecting) stops the shared point cursor, so workers finish only
//!   the points already in flight instead of computing the whole space;
//! * identical in-flight requests — from one client or many — coalesce on
//!   the tier's single-flight memos exactly the way `TraceStore`
//!   single-flights generation: N clients asking for the same cold point run
//!   **one** simulation, observable as [`StoreHealth`] `coalesced`/`hits`
//!   (`StoreHealth::result_cache_hit_rate` is the service's headline
//!   metric). Several server *processes* can share one tier too, through
//!   the store's `RESCACHE_TRACE_DIR` entry locks;
//! * malformed, oversized or unserviceable request lines get typed error
//!   responses on the same connection — never a panic, never a silent
//!   disconnect — and a per-connection request quota
//!   ([`ServeConfig::max_requests_per_conn`], `RESCACHE_SERVE_QUOTA`) caps
//!   what any one connection may ask before being closed with a typed
//!   `quota_exhausted` error.
//!
//! # Protocol
//!
//! One JSON object per line in, one or more JSON objects per line out.
//! Every response carries `"ok"` and echoes the request's `"id"` (if any);
//! typed errors carry `"error"` and, for range/quota violations, a
//! machine-readable `"code"`.
//!
//! | Request | Response lines |
//! |---|---|
//! | `{"req":"ping"}` | `{"ok":true,"kind":"pong"}` |
//! | `{"req":"health"}` | one `kind:"health"` line with the tier's [`StoreHealth`] counters plus the server's open-connection count |
//! | `{"req":"point","app":"ammp","sets":64,"ways":2}` | one `kind:"result"` line with the measurement |
//! | `{"req":"sweep","app":"ammp","org":"selective_sets"}` | one `kind:"result"` line per point *as each completes*, then a `kind:"done"` summary with the objective's best point |
//! | `{"req":"cancel","id":3}` | stops the in-flight sweep with that id on this connection; the sweep answers with a `kind:"cancelled"` line counting the points actually evaluated |
//! | `{"req":"dynamic","app":"ammp"}` | `kind:"resize"` lines streamed as the controller decides, then a `kind:"done"` line with the dynamic measurement |
//! | `{"req":"shutdown"}` | `{"ok":true,"kind":"bye"}`, then the whole server drains and exits |
//!
//! `point`, `sweep` and `dynamic` accept optional `"system"` (`"base"`
//! default, `"in_order"`), `"side"` (`"data"` default, `"instruction"`),
//! `"org"` (`"selective_sets"` default, `"selective_ways"`, `"hybrid"`) and
//! `"objective"` (`"edp"`, `"ed2p"`, `"delay"`; defaults to the runner's
//! configured objective, i.e. `RESCACHE_OBJECTIVE` or EDP); `point`
//! omitting `sets`/`ways` measures the full-size baseline. `dynamic`
//! additionally accepts `"interval"` (accesses; defaults to the runner's
//! `dynamic_interval`), `"miss_bound"` (defaults to the baseline's
//! per-interval miss count, as the profiling candidates derive it) and
//! `"size_bound"` (bytes, snapped to an offered capacity; defaults to the
//! smallest). Applications resolve through [`spec::profile`] first, then
//! the [`WorkloadRegistry`] scenario names. Every `kind:"result"` line
//! carries a `"latency"` block (delayed-hit counts and mean stall cycles)
//! next to the energy numbers, and a sweep's `kind:"done"` summary names
//! the objective that ranked its best point. For `dynamic`, the objective
//! also steers the controller's interval signal (a latency-first objective
//! counts delayed hits as upsizing pressure).

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use rescache_energy::Objective;
use rescache_trace::{spec, AppProfile, WorkloadRegistry};

use crate::experiment::parallel::effective_workers;
use crate::experiment::runner::{Measurement, RunSetup, Runner};
use crate::experiment::shared_tier::StoreHealth;
use crate::json::{obj, Json};
use crate::org::{CachePoint, ConfigSpace, Organization};
use crate::strategy::{DynamicParams, ResizeDecision};
use crate::system::{ResizableCacheSide, SystemConfig};

/// Default cap on one request line. Real requests are under 200 bytes; the
/// cap exists so a stuck or hostile client cannot make a connection thread
/// buffer unbounded memory. An oversized line is answered with a typed
/// error and skipped — the connection stays usable.
pub const DEFAULT_MAX_LINE_BYTES: usize = 64 * 1024;

/// How often an idle connection re-checks the shutdown flag. Connection
/// reads use this as their socket timeout so that [`ServerHandle::stop`]
/// drains within one interval even when clients hold connections open
/// without sending anything — a bounded shutdown, not one hostage to the
/// slowest client.
const SHUTDOWN_POLL: Duration = Duration::from_millis(100);

/// The socket timeout of a mid-sweep *poll* for interleaved lines (cancel
/// requests, pipelined follow-ups, or the client vanishing): short enough
/// that a quiet client costs ~1 ms per streamed result, long enough that a
/// cancel sent right after a result line is seen before the next one.
const POLL_FAST: Duration = Duration::from_millis(1);

/// The address the sweep service binds when `RESCACHE_SERVE_ADDR` is unset.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7878";

/// Configuration of one [`SweepServer`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Longest request line accepted, in bytes.
    pub max_line_bytes: usize,
    /// Worker threads a single sweep request shards its points across.
    pub workers: usize,
    /// Requests one connection may make before it is closed with a typed
    /// `quota_exhausted` error; `0` means unlimited. Counts every accepted
    /// request line (including oversized ones), so a hostile or runaway
    /// client cannot monopolise the tier indefinitely.
    pub max_requests_per_conn: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: DEFAULT_ADDR.to_string(),
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            workers: effective_workers(),
            max_requests_per_conn: 0,
        }
    }
}

impl ServeConfig {
    /// The configuration the environment selects: `RESCACHE_SERVE_ADDR`
    /// overrides the bind address, `RESCACHE_SERVE_QUOTA` the
    /// per-connection request quota (`0` or unset = unlimited; unparsable
    /// values warn and keep unlimited), and `RESCACHE_THREADS` (via
    /// [`effective_workers`]) the sweep fan-out.
    pub fn from_env() -> Self {
        let mut config = Self::default();
        if let Ok(addr) = std::env::var("RESCACHE_SERVE_ADDR") {
            config.addr = addr;
        }
        if let Ok(quota) = std::env::var("RESCACHE_SERVE_QUOTA") {
            match quota.trim().parse::<usize>() {
                Ok(n) => config.max_requests_per_conn = n,
                Err(_) => eprintln!(
                    "rescache-serve: unparsable RESCACHE_SERVE_QUOTA {quota:?}; \
                     serving without a per-connection quota"
                ),
            }
        }
        config
    }
}

/// A handle for stopping a running [`SweepServer`] from another thread (or
/// from a connection thread serving a `shutdown` request).
#[derive(Debug, Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    connections: Arc<AtomicUsize>,
}

impl ServerHandle {
    /// The address the server is listening on (with the ephemeral port
    /// resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of client connections currently open (also reported on every
    /// `health` response line).
    pub fn open_connections(&self) -> usize {
        self.connections.load(Ordering::SeqCst)
    }

    /// Signals the accept loop to exit. The flag alone is not enough — the
    /// loop is blocked in `accept` — so a throwaway self-connection wakes
    /// it. Idempotent; safe from any thread.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Failure is fine: the listener may already be gone.
        let _ = TcpStream::connect(wake_addr(self.addr));
    }
}

/// The address [`ServerHandle::stop`]'s throwaway wake-up connection dials.
/// A wildcard bind (`0.0.0.0:p` / `[::]:p`) stores the wildcard itself as
/// the local address; connecting *to* a wildcard is non-portable (it happens
/// to mean loopback on Linux, but fails elsewhere), which would leave
/// `serve()` blocked in `accept` forever — so wildcard hosts are rewritten
/// to the matching loopback, keeping the port.
fn wake_addr(addr: SocketAddr) -> SocketAddr {
    let ip = match addr.ip() {
        IpAddr::V4(ip) if ip.is_unspecified() => IpAddr::V4(Ipv4Addr::LOCALHOST),
        IpAddr::V6(ip) if ip.is_unspecified() => IpAddr::V6(Ipv6Addr::LOCALHOST),
        ip => ip,
    };
    SocketAddr::new(ip, addr.port())
}

/// The sweep service (see the module documentation).
#[derive(Debug)]
pub struct SweepServer {
    listener: TcpListener,
    runner: Runner,
    config: ServeConfig,
    shutdown: Arc<AtomicBool>,
    connections: Arc<AtomicUsize>,
}

impl SweepServer {
    /// Binds the service (resolving an ephemeral port if `addr` asked for
    /// one) without accepting yet.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn bind(runner: Runner, config: ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Self {
            listener,
            runner,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
            connections: Arc::new(AtomicUsize::new(0)),
        })
    }

    /// The bound address (with the ephemeral port resolved).
    ///
    /// # Errors
    ///
    /// Propagates the OS error if the socket has no local address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A stop handle usable from any thread.
    ///
    /// # Errors
    ///
    /// Propagates the OS error if the socket has no local address.
    pub fn handle(&self) -> std::io::Result<ServerHandle> {
        Ok(ServerHandle {
            addr: self.local_addr()?,
            shutdown: Arc::clone(&self.shutdown),
            connections: Arc::clone(&self.connections),
        })
    }

    /// Runs the accept loop until [`ServerHandle::stop`] is called (or a
    /// client sends `shutdown`). Each connection is served on its own
    /// thread; threads of connections that have ended are reaped on every
    /// accept (a long-lived server must not grow a handle per client it
    /// ever served), and the loop drains the rest before returning, so a
    /// clean shutdown never drops an in-flight response mid-line.
    ///
    /// # Errors
    ///
    /// Returns an error only if obtaining the stop handle fails; accept
    /// errors on individual connections are absorbed (logged) and the loop
    /// continues.
    pub fn serve(self) -> std::io::Result<()> {
        let handle = self.handle()?;
        let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            // Reap finished connection threads (joining a finished thread
            // cannot block) so the handle list tracks live connections, not
            // the server's whole accept history.
            connections = connections
                .into_iter()
                .filter_map(|connection| {
                    if connection.is_finished() {
                        let _ = connection.join();
                        None
                    } else {
                        Some(connection)
                    }
                })
                .collect();
            match stream {
                Ok(stream) => {
                    let runner = self.runner.clone();
                    let config = self.config.clone();
                    let handle = handle.clone();
                    // Counted up front (not in the thread) so the gauge
                    // never under-reports a connection that was accepted
                    // but whose thread has not scheduled yet.
                    self.connections.fetch_add(1, Ordering::SeqCst);
                    let gauge = Arc::clone(&self.connections);
                    connections.push(std::thread::spawn(move || {
                        // Decremented on every exit path (panic included) so
                        // the health gauge cannot drift upward over a
                        // long-lived server's life.
                        struct Open(Arc<AtomicUsize>);
                        impl Drop for Open {
                            fn drop(&mut self) {
                                self.0.fetch_sub(1, Ordering::SeqCst);
                            }
                        }
                        let _open = Open(gauge);
                        if let Err(e) = serve_connection(&runner, stream, &config, &handle) {
                            // A vanished client is normal server life, not a
                            // server failure.
                            eprintln!("rescache-serve: connection ended: {e}");
                        }
                    }));
                }
                Err(e) => eprintln!("rescache-serve: accept failed: {e}"),
            }
        }
        for connection in connections {
            let _ = connection.join();
        }
        Ok(())
    }

    /// Convenience: serve on a background thread, returning the stop handle
    /// and the join handle.
    ///
    /// # Errors
    ///
    /// Propagates the OS error if the socket has no local address.
    pub fn spawn(self) -> std::io::Result<(ServerHandle, std::thread::JoinHandle<()>)> {
        let handle = self.handle()?;
        let join = std::thread::spawn(move || {
            if let Err(e) = self.serve() {
                eprintln!("rescache-serve: server exited with error: {e}");
            }
        });
        Ok((handle, join))
    }
}

/// Outcome of reading one request line.
enum LineOutcome {
    /// A complete line (without the trailing newline).
    Line(String),
    /// The line exceeded the cap; the excess was drained to the next
    /// newline so the connection can continue.
    Oversized,
    /// The client closed the connection.
    Eof,
    /// Poll mode only: no complete line is buffered right now.
    Quiet,
}

/// Incremental `\n`-terminated line scanner, enforcing the byte cap without
/// ever buffering more than the cap. (`BufRead::read_line` would buffer the
/// whole oversized line first — exactly the unbounded allocation the cap
/// exists to prevent.) The partial-line state lives here, not on the stack,
/// so a mid-sweep *poll* can give up mid-line and resume gathering on the
/// next call without losing bytes.
#[derive(Default)]
struct LineReader {
    partial: Vec<u8>,
    discarding: bool,
}

impl LineReader {
    /// Reads one line. On a socket read timeout, blocking mode re-checks
    /// the shutdown flag and keeps waiting; poll mode returns
    /// [`LineOutcome::Quiet`] (any partial line stays gathered for the next
    /// call).
    fn read_line(
        &mut self,
        reader: &mut impl BufRead,
        max_line_bytes: usize,
        shutdown: &AtomicBool,
        blocking: bool,
    ) -> std::io::Result<LineOutcome> {
        loop {
            let buf = match reader.fill_buf() {
                Ok(buf) => buf,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if shutdown.load(Ordering::SeqCst) {
                        return Ok(LineOutcome::Eof);
                    }
                    if !blocking {
                        return Ok(LineOutcome::Quiet);
                    }
                    continue;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if buf.is_empty() {
                return Ok(if std::mem::take(&mut self.discarding) {
                    LineOutcome::Oversized
                } else if self.partial.is_empty() {
                    LineOutcome::Eof
                } else {
                    // A final unterminated line still counts as a request.
                    Self::finish_line(&mut self.partial)
                });
            }
            let newline = buf.iter().position(|&b| b == b'\n');
            let take = newline.map_or(buf.len(), |i| i + 1);
            if !self.discarding {
                let body = newline.map_or(take, |i| i);
                if self.partial.len() + body > max_line_bytes {
                    self.partial.clear();
                    self.discarding = true;
                } else {
                    self.partial.extend_from_slice(&buf[..body]);
                }
            }
            reader.consume(take);
            if newline.is_some() {
                return Ok(if std::mem::take(&mut self.discarding) {
                    LineOutcome::Oversized
                } else {
                    Self::finish_line(&mut self.partial)
                });
            }
        }
    }

    fn finish_line(partial: &mut Vec<u8>) -> LineOutcome {
        let bytes = std::mem::take(partial);
        LineOutcome::Line(String::from_utf8_lossy(&bytes).into_owned())
    }
}

/// Per-connection state: the buffered stream pair, the incremental line
/// scanner, and any request lines the client pipelined while a sweep was
/// streaming (dispatched in arrival order once the sweep finishes).
struct Conn<'a> {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    lines: LineReader,
    pending: VecDeque<String>,
    config: &'a ServeConfig,
    handle: &'a ServerHandle,
}

impl Conn<'_> {
    /// The next request line to dispatch: lines pipelined during a sweep
    /// first, then a blocking socket read.
    fn next_request(&mut self) -> std::io::Result<LineOutcome> {
        if let Some(line) = self.pending.pop_front() {
            return Ok(LineOutcome::Line(line));
        }
        self.lines.read_line(
            &mut self.reader,
            self.config.max_line_bytes,
            &self.handle.shutdown,
            true,
        )
    }

    /// A non-waiting look at the connection, used between streamed sweep
    /// results: shrinks the socket timeout to [`POLL_FAST`] for the read
    /// attempt, then restores the shutdown-poll timeout.
    fn poll_line(&mut self) -> std::io::Result<LineOutcome> {
        self.reader.get_ref().set_read_timeout(Some(POLL_FAST))?;
        let outcome = self.lines.read_line(
            &mut self.reader,
            self.config.max_line_bytes,
            &self.handle.shutdown,
            false,
        );
        let restored = self.reader.get_ref().set_read_timeout(Some(SHUTDOWN_POLL));
        let outcome = outcome?;
        restored?;
        Ok(outcome)
    }
}

/// Serves one client connection: read a request line, dispatch, repeat
/// until EOF, shutdown, or quota exhaustion.
fn serve_connection(
    runner: &Runner,
    stream: TcpStream,
    config: &ServeConfig,
    handle: &ServerHandle,
) -> std::io::Result<()> {
    // Reads poll so a shutdown drains even past idle clients; the timeout
    // never surfaces to the protocol (LineReader absorbs it).
    stream.set_read_timeout(Some(SHUTDOWN_POLL))?;
    let mut conn = Conn {
        reader: BufReader::new(stream.try_clone()?),
        writer: BufWriter::new(stream),
        lines: LineReader::default(),
        pending: VecDeque::new(),
        config,
        handle,
    };
    let mut accepted: usize = 0;
    loop {
        let outcome = conn.next_request()?;
        let quota = config.max_requests_per_conn;
        let over_quota = |accepted: &mut usize| {
            *accepted += 1;
            quota > 0 && *accepted > quota
        };
        let line = match outcome {
            LineOutcome::Eof | LineOutcome::Quiet => return Ok(()),
            LineOutcome::Oversized => {
                runner.trace_store().tier().health().note_request();
                if over_quota(&mut accepted) {
                    write_line(&mut conn.writer, &quota_response(Json::Null, quota))?;
                    return Ok(());
                }
                write_line(
                    &mut conn.writer,
                    &error_response(
                        Json::Null,
                        &format!(
                            "request line exceeds {} bytes; line skipped",
                            config.max_line_bytes
                        ),
                    ),
                )?;
                continue;
            }
            LineOutcome::Line(line) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        runner.trace_store().tier().health().note_request();
        if over_quota(&mut accepted) {
            let id = Json::parse(&line)
                .ok()
                .and_then(|request| request.get("id").cloned())
                .unwrap_or(Json::Null);
            write_line(&mut conn.writer, &quota_response(id, quota))?;
            return Ok(());
        }
        match dispatch(runner, &line, &mut conn)? {
            Flow::Continue => {}
            Flow::Close => {
                conn.writer.flush()?;
                return Ok(());
            }
            Flow::Shutdown => {
                conn.writer.flush()?;
                handle.stop();
                return Ok(());
            }
        }
    }
}

/// Whether the connection (and, on `Shutdown`, the whole server) continues
/// after a request.
enum Flow {
    Continue,
    /// The connection is done (client vanished mid-stream); close without
    /// treating it as an I/O failure.
    Close,
    Shutdown,
}

/// Parses and executes one request line, writing the response line(s).
fn dispatch(runner: &Runner, line: &str, conn: &mut Conn) -> std::io::Result<Flow> {
    let request = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            write_line(
                &mut conn.writer,
                &error_response(Json::Null, &format!("malformed request: {e}")),
            )?;
            return Ok(Flow::Continue);
        }
    };
    let id = request.get("id").cloned().unwrap_or(Json::Null);
    let verb = request.get("req").and_then(Json::as_str).unwrap_or("");
    match verb {
        "ping" => {
            write_line(
                &mut conn.writer,
                &obj([
                    ("id", id),
                    ("ok", Json::Bool(true)),
                    ("kind", Json::Str("pong".into())),
                ]),
            )?;
            Ok(Flow::Continue)
        }
        "health" => {
            let health = runner.trace_store().tier().health_snapshot();
            let open = conn.handle.open_connections();
            write_line(&mut conn.writer, &health_response(id, &health, open))?;
            Ok(Flow::Continue)
        }
        "shutdown" => {
            write_line(
                &mut conn.writer,
                &obj([
                    ("id", id),
                    ("ok", Json::Bool(true)),
                    ("kind", Json::Str("bye".into())),
                ]),
            )?;
            Ok(Flow::Shutdown)
        }
        "point" => {
            match parse_target(&request, runner.config().objective) {
                Ok(target) => serve_point(runner, &request, id, &target, &mut conn.writer)?,
                Err(e) => write_line(&mut conn.writer, &error_response(id, &e))?,
            }
            Ok(Flow::Continue)
        }
        "sweep" => match parse_target(&request, runner.config().objective) {
            Ok(target) => serve_sweep(runner, id, &target, conn),
            Err(e) => {
                write_line(&mut conn.writer, &error_response(id, &e))?;
                Ok(Flow::Continue)
            }
        },
        "dynamic" => {
            match parse_target(&request, runner.config().objective) {
                Ok(target) => serve_dynamic(runner, &request, id, &target, conn)?,
                Err(e) => write_line(&mut conn.writer, &error_response(id, &e))?,
            }
            Ok(Flow::Continue)
        }
        "cancel" => {
            // A matching cancel is consumed *inside* serve_sweep's poll
            // loop; reaching dispatch means nothing is in flight here.
            write_line(
                &mut conn.writer,
                &error_response(id, "no sweep in flight to cancel on this connection"),
            )?;
            Ok(Flow::Continue)
        }
        "" => {
            write_line(
                &mut conn.writer,
                &error_response(id, "missing \"req\" field (string)"),
            )?;
            Ok(Flow::Continue)
        }
        other => {
            write_line(
                &mut conn.writer,
                &error_response(
                    id,
                    &format!(
                        "unknown request {other:?} (want ping, health, point, sweep, \
                         dynamic, cancel or shutdown)"
                    ),
                ),
            )?;
            Ok(Flow::Continue)
        }
    }
}

/// The (application, system, organization, side) every simulation request
/// names, with protocol defaults applied.
struct Target {
    app: AppProfile,
    system: SystemConfig,
    organization: Organization,
    side: ResizableCacheSide,
    objective: Objective,
}

/// Resolves a request's simulation target, with a protocol-level error
/// string on anything unresolvable. `default_objective` is the runner's
/// configured objective; a request's `"objective"` field overrides it for
/// that request only.
fn parse_target(request: &Json, default_objective: Objective) -> Result<Target, String> {
    let name = request
        .get("app")
        .and_then(Json::as_str)
        .ok_or("missing \"app\" field (string)")?;
    let app = spec::profile(name)
        .or_else(|| WorkloadRegistry::builtin().get(name).map(|w| w.profile()))
        .ok_or_else(|| format!("unknown application {name:?}"))?;
    // `with_env_policy`: the serving process honours `RESCACHE_POLICY`
    // (the policy lands in the hierarchy config and so in every memo key).
    let system = match request.get("system").and_then(Json::as_str) {
        None | Some("base") => SystemConfig::base().with_env_policy(),
        Some("in_order") => SystemConfig::in_order().with_env_policy(),
        Some(other) => return Err(format!("unknown system {other:?} (want base or in_order)")),
    };
    let organization = match request.get("org").and_then(Json::as_str) {
        None | Some("selective_sets") => Organization::SelectiveSets,
        Some("selective_ways") => Organization::SelectiveWays,
        Some("hybrid") => Organization::Hybrid,
        Some(other) => {
            return Err(format!(
                "unknown org {other:?} (want selective_sets, selective_ways or hybrid)"
            ))
        }
    };
    let side = match request.get("side").and_then(Json::as_str) {
        None | Some("data") => ResizableCacheSide::Data,
        Some("instruction") => ResizableCacheSide::Instruction,
        Some(other) => return Err(format!("unknown side {other:?} (want data or instruction)")),
    };
    let objective = match request.get("objective").and_then(Json::as_str) {
        None => default_objective,
        Some(tag) => Objective::from_tag(tag)
            .ok_or_else(|| format!("unknown objective {tag:?} (want edp, ed2p or delay)"))?,
    };
    Ok(Target {
        app,
        system,
        organization,
        side,
        objective,
    })
}

/// Runs one target point through the memoized runner. The point is already
/// validated against the organization's configuration space, so this cannot
/// fail.
fn run_point(runner: &Runner, target: &Target, point: Option<CachePoint>) -> Measurement {
    let tag_bits = match point {
        Some(_) if target.organization.needs_resizing_tag_bits() => target
            .side
            .config_of(&target.system.hierarchy)
            .resizing_tag_bits(),
        _ => 0,
    };
    match target.side {
        ResizableCacheSide::Data => {
            runner.run_static(&target.app, &target.system, point, None, tag_bits, 0)
        }
        ResizableCacheSide::Instruction => {
            runner.run_static(&target.app, &target.system, None, point, 0, tag_bits)
        }
    }
}

/// Serves a `point` request: one simulation (baseline when `sets`/`ways`
/// are omitted), one `kind:"result"` line.
fn serve_point(
    runner: &Runner,
    request: &Json,
    id: Json,
    target: &Target,
    writer: &mut impl Write,
) -> std::io::Result<()> {
    let point = match (request.get("sets"), request.get("ways")) {
        (None, None) => None,
        (Some(sets), Some(ways)) => {
            let (Some(sets), Some(ways)) = (sets.as_u64(), ways.as_u64()) else {
                return write_line(
                    writer,
                    &error_response(id, "\"sets\" and \"ways\" must be non-negative integers"),
                );
            };
            // An out-of-range associativity used to be clamped to u32::MAX
            // and then rejected as "not offered" — misleading; report the
            // real problem with a typed range error instead.
            let Ok(ways) = u32::try_from(ways) else {
                return write_line(
                    writer,
                    &error_response_coded(
                        id,
                        "out_of_range",
                        &format!("\"ways\" {ways} exceeds the supported maximum {}", u32::MAX),
                    ),
                );
            };
            let point = CachePoint { sets, ways };
            // Validating against the organization's space turns a geometry
            // the engines cannot run (non-power-of-two sets, zero ways)
            // into a typed protocol error instead of an engine panic.
            let space = match config_space(target) {
                Ok(space) => space,
                Err(e) => return write_line(writer, &error_response(id, &e)),
            };
            if !space.points().contains(&point) {
                return write_line(
                    writer,
                    &error_response(
                        id,
                        &format!(
                            "point {}x{} is not offered by {:?} on this cache",
                            point.sets, point.ways, target.organization
                        ),
                    ),
                );
            }
            Some(point)
        }
        _ => {
            return write_line(
                writer,
                &error_response(id, "give both \"sets\" and \"ways\", or neither"),
            )
        }
    };
    let measurement = run_point(runner, target, point);
    runner.trace_store().tier().health().note_served();
    write_line(writer, &result_response(id, point, &measurement))
}

/// What a mid-sweep poll of the connection found.
enum Control {
    /// Nothing new; keep streaming.
    Quiet,
    /// The client cancelled this sweep.
    Cancel,
    /// The client is gone (EOF or connection error).
    Disconnected,
}

/// Polls the connection between streamed sweep results: consumes everything
/// the client pipelined, handling a `cancel` that names this sweep (and
/// answering, mid-stream, cancels that name anything else), queueing other
/// requests for dispatch after the sweep, and detecting a vanished client.
fn poll_control(runner: &Runner, conn: &mut Conn, sweep_id: &Json) -> Control {
    loop {
        match conn.poll_line() {
            Ok(LineOutcome::Quiet) => return Control::Quiet,
            Ok(LineOutcome::Eof) | Err(_) => return Control::Disconnected,
            Ok(LineOutcome::Oversized) => {
                runner.trace_store().tier().health().note_request();
                let oversized = error_response(
                    Json::Null,
                    &format!(
                        "request line exceeds {} bytes; line skipped",
                        conn.config.max_line_bytes
                    ),
                );
                if write_line(&mut conn.writer, &oversized).is_err() {
                    return Control::Disconnected;
                }
            }
            Ok(LineOutcome::Line(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                if let Ok(request) = Json::parse(&line) {
                    if request.get("req").and_then(Json::as_str) == Some("cancel") {
                        runner.trace_store().tier().health().note_request();
                        let cancel_id = request.get("id").cloned().unwrap_or(Json::Null);
                        if cancel_id == *sweep_id {
                            return Control::Cancel;
                        }
                        // A cancel naming some other id would otherwise wait
                        // out the very sweep it does not name; answer now.
                        let unmatched = error_response(
                            cancel_id,
                            "no in-flight sweep with that id on this connection",
                        );
                        if write_line(&mut conn.writer, &unmatched).is_err() {
                            return Control::Disconnected;
                        }
                        continue;
                    }
                }
                // Any other pipelined request (malformed ones included)
                // waits its turn until the sweep finishes.
                conn.pending.push_back(line);
            }
        }
    }
}

/// Serves a `sweep` request: shards the organization's points across worker
/// threads sharing one atomic cursor, streams each `kind:"result"` line as
/// its simulation completes (coalescing with every concurrent request
/// through the tier memos), then writes the `kind:"done"` summary with the
/// best point under the request's objective (EDP by default).
///
/// The connection is polled between result lines: a `cancel` naming this
/// sweep's id — or the client disconnecting — stops the shared cursor, so
/// the workers finish only the points already in flight and the sweep
/// answers with a `kind:"cancelled"` line counting what was evaluated.
fn serve_sweep(
    runner: &Runner,
    id: Json,
    target: &Target,
    conn: &mut Conn,
) -> std::io::Result<Flow> {
    let space = match config_space(target) {
        Ok(space) => space,
        Err(e) => {
            write_line(&mut conn.writer, &error_response(id, &e))?;
            return Ok(Flow::Continue);
        }
    };
    let points = space.points();
    let base = run_point(runner, target, None);
    runner.trace_store().tier().health().note_served();

    let (tx, rx) = mpsc::channel::<(CachePoint, Measurement)>();
    let cursor = AtomicUsize::new(0);
    let mut evaluated: Vec<(CachePoint, Measurement)> = Vec::with_capacity(points.len());
    let mut write_error = None;
    let mut cancelled = false;
    let mut disconnected = false;
    std::thread::scope(|scope| {
        let cursor = &cursor;
        for _ in 0..conn.config.workers.clamp(1, points.len().max(1)) {
            let tx = tx.clone();
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(point) = points.get(i) else { break };
                let measurement = run_point(runner, target, Some(*point));
                if tx.send((*point, measurement)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        // Parking the cursor at the end of the space stops all future
        // claims; workers finish only their in-flight point.
        let stop_cursor = || cursor.store(points.len(), Ordering::Relaxed);
        // Stream results in completion order; the done line carries the
        // summary, so clients needing sweep order key on (sets, ways).
        loop {
            let streaming = |w: &Option<std::io::Error>, c: bool, d: bool| w.is_none() && !c && !d;
            match rx.recv_timeout(SHUTDOWN_POLL) {
                Ok((point, measurement)) => {
                    evaluated.push((point, measurement));
                    if streaming(&write_error, cancelled, disconnected) {
                        // A cancel racing this result must win: check the
                        // connection before writing the line.
                        match poll_control(runner, conn, &id) {
                            Control::Quiet => {}
                            Control::Cancel => {
                                cancelled = true;
                                stop_cursor();
                            }
                            Control::Disconnected => {
                                disconnected = true;
                                stop_cursor();
                            }
                        }
                    }
                    if streaming(&write_error, cancelled, disconnected) {
                        runner.trace_store().tier().health().note_served();
                        if let Err(e) = write_line(
                            &mut conn.writer,
                            &result_response(id.clone(), Some(point), &measurement),
                        ) {
                            write_error = Some(e);
                            stop_cursor();
                        }
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if streaming(&write_error, cancelled, disconnected) {
                        match poll_control(runner, conn, &id) {
                            Control::Quiet => {}
                            Control::Cancel => {
                                cancelled = true;
                                stop_cursor();
                            }
                            Control::Disconnected => {
                                disconnected = true;
                                stop_cursor();
                            }
                        }
                    }
                    // A server shutdown mid-sweep also stops claiming new
                    // points (the done line reports what was evaluated).
                    if conn.handle.shutdown.load(Ordering::SeqCst) {
                        stop_cursor();
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
    });
    if let Some(e) = write_error {
        return Err(e);
    }
    if disconnected {
        // Nothing left to write to — the in-flight results already drained
        // into the shared tier for the next client.
        return Ok(Flow::Close);
    }
    if cancelled {
        write_line(
            &mut conn.writer,
            &obj([
                ("id", id),
                ("ok", Json::Bool(true)),
                ("kind", Json::Str("cancelled".into())),
                ("points", Json::Num(evaluated.len() as f64)),
                ("space_points", Json::Num(points.len() as f64)),
            ]),
        )?;
        return Ok(Flow::Continue);
    }

    let base_ed = base.energy_delay();
    let objective = target.objective;
    let best = evaluated
        .iter()
        .min_by(|a, b| a.1.score(objective).total_cmp(&b.1.score(objective)))
        .copied();
    let Some((best_point, best_measurement)) = best else {
        write_line(
            &mut conn.writer,
            &error_response(id, "configuration space was empty"),
        )?;
        return Ok(Flow::Continue);
    };
    write_line(
        &mut conn.writer,
        &obj([
            ("id", id),
            ("ok", Json::Bool(true)),
            ("kind", Json::Str("done".into())),
            ("points", Json::Num(evaluated.len() as f64)),
            ("objective", Json::Str(objective.tag().into())),
            (
                "best",
                obj([
                    ("sets", Json::Num(best_point.sets as f64)),
                    ("ways", Json::Num(f64::from(best_point.ways))),
                ]),
            ),
            ("best_score", Json::Num(best_measurement.score(objective))),
            (
                "edp_reduction_percent",
                Json::Num(best_measurement.energy_delay().reduction_vs(&base_ed)),
            ),
        ]),
    )?;
    Ok(Flow::Continue)
}

/// Serves a `dynamic` request: runs the miss-ratio resizing controller for
/// the target (parameters from the request, with profiling-style defaults),
/// streaming every resize decision back as a `kind:"resize"` line while the
/// simulation runs, then a `kind:"done"` line with the measurement.
///
/// Dynamic runs are not memoized (the controller's trajectory is the whole
/// point), so every `dynamic` request simulates; only the *trace* is shared
/// through the tier. If a store fault forces the streamed source to retry,
/// the retried attempt streams from a fresh controller into the same
/// connection. The two counters in the `done` line differ on purpose:
/// `decisions` counts every line streamed over the whole run (warm-up
/// included, retries included), while `resizes` is the measurement's
/// measured-region count — a run that settles at its size floor during
/// warm-up streams decisions but reports zero measured resizes, exactly as
/// the in-process [`Runner::run_dynamic`] would.
fn serve_dynamic(
    runner: &Runner,
    request: &Json,
    id: Json,
    target: &Target,
    conn: &mut Conn,
) -> std::io::Result<()> {
    let space = match config_space(target) {
        Ok(space) => space,
        Err(e) => return write_line(&mut conn.writer, &error_response(id, &e)),
    };
    let interval = match request.get("interval") {
        None => runner.config().dynamic_interval,
        Some(v) => match v.as_u64() {
            Some(n) => n,
            None => {
                return write_line(
                    &mut conn.writer,
                    &error_response(id, "\"interval\" must be a non-negative integer"),
                )
            }
        },
    };
    // The full-size baseline anchors the default miss-bound (the profiling
    // derivation: expected misses per interval at full size) and the done
    // line's EDP reduction.
    let base = run_point(runner, target, None);
    runner.trace_store().tier().health().note_served();
    let base_miss_ratio = match target.side {
        ResizableCacheSide::Data => base.l1d_miss_ratio,
        ResizableCacheSide::Instruction => base.l1i_miss_ratio,
    };
    let miss_bound = match request.get("miss_bound") {
        Some(v) => match v.as_u64() {
            Some(n) => n,
            None => {
                return write_line(
                    &mut conn.writer,
                    &error_response(id, "\"miss_bound\" must be a non-negative integer"),
                )
            }
        },
        None => (base_miss_ratio.max(1e-4) * interval as f64)
            .ceil()
            .max(1.0) as u64,
    };
    let size_bound = match request.get("size_bound") {
        Some(v) => match v.as_u64() {
            Some(n) => n,
            None => {
                return write_line(
                    &mut conn.writer,
                    &error_response(id, "\"size_bound\" must be a non-negative integer"),
                )
            }
        },
        None => space.min_bytes(),
    };
    // Snap to an offered capacity, exactly as the profiling candidates do:
    // an in-between bound rounds up, an over-full bound clamps to full.
    let size_bound = space.snap_size_bound(size_bound);
    let params = match DynamicParams::new(interval, miss_bound, size_bound) {
        Ok(params) => params,
        Err(e) => {
            return write_line(
                &mut conn.writer,
                &error_response_coded(id, "out_of_range", &e.to_string()),
            )
        }
    };
    let tag_bits = if target.organization.needs_resizing_tag_bits() {
        target
            .side
            .config_of(&target.system.hierarchy)
            .resizing_tag_bits()
    } else {
        0
    };
    let mut setup = RunSetup {
        dynamic: Some((target.side, space, params)),
        ..RunSetup::default()
    };
    match target.side {
        ResizableCacheSide::Data => setup.d_tag_bits = tag_bits,
        ResizableCacheSide::Instruction => setup.i_tag_bits = tag_bits,
    }
    // The controller steers by the runner's configured objective; a
    // per-request objective therefore runs through a runner clone over the
    // *same* store (traces still shared, health still aggregated).
    let observer = if target.objective == runner.config().objective {
        runner.clone()
    } else {
        Runner::with_store(
            runner.config().with_objective(target.objective),
            runner.trace_store().clone(),
        )
    };

    let (tx, rx) = mpsc::channel::<ResizeDecision>();
    let mut decisions = 0u64;
    let mut write_error: Option<std::io::Error> = None;
    let outcome = std::thread::scope(|scope| {
        let observer = &observer;
        let setup = &setup;
        let sim = scope.spawn(move || {
            // `tx` moves in and drops when the run completes, which is what
            // ends the drain loop below.
            observer.run_dynamic_observed(&target.app, &target.system, setup, Some(&tx))
        });
        for decision in &rx {
            if write_error.is_some() {
                // The client is gone mid-stream; the simulation cannot be
                // aborted (it owns no cancellation point), so drain quietly
                // and let the run finish into the shared trace state.
                continue;
            }
            decisions += 1;
            let line = obj([
                ("id", id.clone()),
                ("ok", Json::Bool(true)),
                ("kind", Json::Str("resize".into())),
                ("accesses", Json::Num(decision.accesses as f64)),
                (
                    "interval_signal",
                    Json::Num(decision.interval_signal as f64),
                ),
                ("miss_bound", Json::Num(decision.miss_bound as f64)),
                (
                    "from",
                    obj([
                        ("sets", Json::Num(decision.from.sets as f64)),
                        ("ways", Json::Num(f64::from(decision.from.ways))),
                    ]),
                ),
                (
                    "to",
                    obj([
                        ("sets", Json::Num(decision.to.sets as f64)),
                        ("ways", Json::Num(f64::from(decision.to.ways))),
                    ]),
                ),
            ]);
            if let Err(e) = write_line(&mut conn.writer, &line) {
                write_error = Some(e);
            }
        }
        sim.join()
    });
    let Ok(measurement) = outcome else {
        // The simulation thread panicked — a bug, not a protocol error; the
        // connection survives to report it.
        return write_line(
            &mut conn.writer,
            &error_response(id, "internal error: dynamic run failed"),
        );
    };
    if let Some(e) = write_error {
        return Err(e);
    }
    runner.trace_store().tier().health().note_served();
    let (resizes, mean_bytes) = match target.side {
        ResizableCacheSide::Data => (measurement.l1d_resizes, measurement.l1d_mean_bytes),
        ResizableCacheSide::Instruction => (measurement.l1i_resizes, measurement.l1i_mean_bytes),
    };
    write_line(
        &mut conn.writer,
        &obj([
            ("id", id),
            ("ok", Json::Bool(true)),
            ("kind", Json::Str("done".into())),
            ("objective", Json::Str(target.objective.tag().into())),
            ("resizes", Json::Num(resizes as f64)),
            ("decisions", Json::Num(decisions as f64)),
            ("cycles", Json::Num(measurement.cycles as f64)),
            ("ipc", Json::Num(measurement.ipc)),
            ("energy_pj", Json::Num(measurement.energy_pj)),
            ("edp", Json::Num(measurement.energy_delay().product())),
            ("score", Json::Num(measurement.score(target.objective))),
            ("mean_bytes", Json::Num(mean_bytes)),
            (
                "edp_reduction_percent",
                Json::Num(
                    measurement
                        .energy_delay()
                        .reduction_vs(&base.energy_delay()),
                ),
            ),
            (
                "params",
                obj([
                    ("interval", Json::Num(params.interval_accesses as f64)),
                    ("miss_bound", Json::Num(params.miss_bound as f64)),
                    ("size_bound", Json::Num(params.size_bound_bytes as f64)),
                ]),
            ),
            ("latency", latency_block(&measurement)),
        ]),
    )
}

/// The configuration space the target's organization offers on its side's
/// cache, as a protocol error when inapplicable (e.g. selective-ways on a
/// direct-mapped cache).
fn config_space(target: &Target) -> Result<ConfigSpace, String> {
    ConfigSpace::enumerate(
        target.side.config_of(&target.system.hierarchy),
        target.organization,
    )
    .map_err(|e| format!("cannot enumerate configuration space: {e}"))
}

/// A measurement's latency-domain counters as a response sub-object.
fn latency_block(m: &Measurement) -> Json {
    obj([
        ("delayed_hits", Json::Num(m.latency.delayed_hits as f64)),
        (
            "delayed_hit_cycles",
            Json::Num(m.latency.delayed_hit_cycles as f64),
        ),
        (
            "mean_delayed_hit_cycles",
            Json::Num(m.latency.mean_delayed_hit_cycles()),
        ),
        (
            "d_primary_misses",
            Json::Num(m.latency.d_primary_misses as f64),
        ),
        ("d_miss_cycles", Json::Num(m.latency.d_miss_cycles as f64)),
        ("mean_miss_cycles", Json::Num(m.latency.mean_miss_cycles())),
    ])
}

/// One measurement as a `kind:"result"` response line.
fn result_response(id: Json, point: Option<CachePoint>, m: &Measurement) -> Json {
    let point_json = match point {
        Some(p) => obj([
            ("sets", Json::Num(p.sets as f64)),
            ("ways", Json::Num(f64::from(p.ways))),
        ]),
        None => Json::Str("full".into()),
    };
    obj([
        ("id", id),
        ("ok", Json::Bool(true)),
        ("kind", Json::Str("result".into())),
        ("point", point_json),
        ("cycles", Json::Num(m.cycles as f64)),
        ("ipc", Json::Num(m.ipc)),
        ("energy_pj", Json::Num(m.energy_pj)),
        ("edp", Json::Num(m.energy_delay().product())),
        ("l1d_miss_ratio", Json::Num(m.l1d_miss_ratio)),
        ("l1i_miss_ratio", Json::Num(m.l1i_miss_ratio)),
        ("latency", latency_block(m)),
    ])
}

/// The tier's [`StoreHealth`] (plus the server's live connection gauge) as a
/// `kind:"health"` response line.
fn health_response(id: Json, health: &StoreHealth, open_connections: usize) -> Json {
    obj([
        ("id", id),
        ("ok", Json::Bool(true)),
        ("kind", Json::Str("health".into())),
        ("connections", Json::Num(open_connections as f64)),
        ("hits", Json::Num(health.hits as f64)),
        ("misses", Json::Num(health.misses as f64)),
        ("coalesced", Json::Num(health.coalesced as f64)),
        ("requests", Json::Num(health.requests as f64)),
        ("served", Json::Num(health.served as f64)),
        ("evictions", Json::Num(health.evictions as f64)),
        ("regenerations", Json::Num(health.regenerations as f64)),
        ("retries", Json::Num(health.retries as f64)),
        ("quarantines", Json::Num(health.quarantines as f64)),
        ("lock_steals", Json::Num(health.lock_steals as f64)),
        ("warnings", Json::Num(health.warnings as f64)),
        ("degraded", Json::Bool(health.degraded)),
        (
            "result_cache_hit_rate",
            health.result_cache_hit_rate().map_or(Json::Null, Json::Num),
        ),
    ])
}

/// A typed `ok:false` response line.
fn error_response(id: Json, message: &str) -> Json {
    obj([
        ("id", id),
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message.to_string())),
    ])
}

/// A typed `ok:false` response line with a machine-readable `"code"`
/// (`"out_of_range"`, `"quota_exhausted"`).
fn error_response_coded(id: Json, code: &str, message: &str) -> Json {
    obj([
        ("id", id),
        ("ok", Json::Bool(false)),
        ("code", Json::Str(code.to_string())),
        ("error", Json::Str(message.to_string())),
    ])
}

/// The `quota_exhausted` response a connection gets right before it closes.
fn quota_response(id: Json, quota: usize) -> Json {
    error_response_coded(
        id,
        "quota_exhausted",
        &format!("connection request quota of {quota} exhausted; closing connection"),
    )
}

/// Writes one response line (the protocol is strictly line-delimited).
fn write_line(writer: &mut impl Write, response: &Json) -> std::io::Result<()> {
    writeln!(writer, "{}", response.render())?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_request_line(
        reader: &mut impl BufRead,
        max_line_bytes: usize,
        shutdown: &AtomicBool,
    ) -> std::io::Result<LineOutcome> {
        LineReader::default().read_line(reader, max_line_bytes, shutdown, true)
    }

    #[test]
    fn read_request_line_splits_caps_and_recovers() {
        let live = AtomicBool::new(false);
        let input = b"{\"req\":\"ping\"}\nshort\n".to_vec();
        let mut reader = std::io::BufReader::new(std::io::Cursor::new(input));
        let LineOutcome::Line(first) = read_request_line(&mut reader, 64, &live).unwrap() else {
            panic!("first line");
        };
        assert_eq!(first, "{\"req\":\"ping\"}");
        let LineOutcome::Line(second) = read_request_line(&mut reader, 64, &live).unwrap() else {
            panic!("second line");
        };
        assert_eq!(second, "short");
        assert!(matches!(
            read_request_line(&mut reader, 64, &live).unwrap(),
            LineOutcome::Eof
        ));

        // An oversized line is reported and fully drained, leaving the next
        // line intact — and the reader never buffers more than the cap.
        let huge = format!("{}\nnext\n", "x".repeat(1000));
        let mut reader = std::io::BufReader::new(std::io::Cursor::new(huge.into_bytes()));
        let mut lines = LineReader::default();
        assert!(matches!(
            lines.read_line(&mut reader, 16, &live, true).unwrap(),
            LineOutcome::Oversized
        ));
        let LineOutcome::Line(next) = lines.read_line(&mut reader, 16, &live, true).unwrap() else {
            panic!("line after oversized");
        };
        assert_eq!(next, "next");

        // A final unterminated line still parses as a request.
        let mut reader = std::io::BufReader::new(std::io::Cursor::new(b"tail".to_vec()));
        let LineOutcome::Line(tail) = read_request_line(&mut reader, 16, &live).unwrap() else {
            panic!("unterminated tail");
        };
        assert_eq!(tail, "tail");
    }

    #[test]
    fn wake_addr_rewrites_wildcards_to_loopback() {
        let cases = [
            ("0.0.0.0:7878", "127.0.0.1:7878"),
            ("[::]:7878", "[::1]:7878"),
            ("127.0.0.1:7878", "127.0.0.1:7878"),
            ("[::1]:9", "[::1]:9"),
            ("192.168.1.5:80", "192.168.1.5:80"),
        ];
        for (bound, expected) in cases {
            let bound: SocketAddr = bound.parse().unwrap();
            let expected: SocketAddr = expected.parse().unwrap();
            assert_eq!(wake_addr(bound), expected, "{bound}");
        }
    }

    #[test]
    fn serve_config_from_env_parses_the_quota() {
        // Default: unlimited.
        assert_eq!(ServeConfig::default().max_requests_per_conn, 0);
    }

    #[test]
    fn parse_target_resolves_defaults_and_rejects_unknowns() {
        let ok = Json::parse(r#"{"req":"sweep","app":"ammp"}"#).unwrap();
        let target = parse_target(&ok, Objective::Edp).expect("defaults apply");
        assert_eq!(target.app.name, "ammp");
        assert_eq!(target.organization, Organization::SelectiveSets);
        assert_eq!(target.side, ResizableCacheSide::Data);
        assert_eq!(target.objective, Objective::Edp);
        // The runner's configured objective is the default the request
        // inherits when it names none.
        let target = parse_target(&ok, Objective::Delay).expect("defaults apply");
        assert_eq!(target.objective, Objective::Delay);

        let scenario = Json::parse(
            r#"{"app":"pointer_chase","org":"hybrid","side":"instruction","system":"in_order","objective":"ed2p"}"#,
        )
        .unwrap();
        let target = parse_target(&scenario, Objective::Edp).expect("registry workloads resolve");
        assert_eq!(target.app.name, "pointer_chase");
        assert_eq!(target.organization, Organization::Hybrid);
        assert_eq!(target.side, ResizableCacheSide::Instruction);
        assert_eq!(target.objective, Objective::Ed2p);

        for bad in [
            r#"{"req":"sweep"}"#,
            r#"{"app":"no_such_app"}"#,
            r#"{"app":"ammp","org":"bogus"}"#,
            r#"{"app":"ammp","side":"bogus"}"#,
            r#"{"app":"ammp","system":"bogus"}"#,
            r#"{"app":"ammp","objective":"bogus"}"#,
        ] {
            let request = Json::parse(bad).unwrap();
            assert!(parse_target(&request, Objective::Edp).is_err(), "{bad}");
        }
    }
}
