//! The sweep service: a multi-threaded JSON-lines request server over the
//! shared store/memo tier — the ROADMAP's "millions of users" direction made
//! concrete.
//!
//! The [`Runner`] + [`SharedTier`](crate::experiment::SharedTier) already
//! behave like a cache tier: traces and static simulations are single-flight
//! memos shared by every clone. This module wraps them in a long-lived
//! [`TcpListener`] front end (std-only — the container builds offline, so no
//! tokio, no serde; the protocol uses the hand-rolled [`crate::json`]
//! module) so many concurrent clients share one tier:
//!
//! * every connection gets its own thread, and a `sweep` request shards its
//!   configuration space across [`effective_workers`] worker threads,
//!   streaming each point's result line back as it completes;
//! * identical in-flight requests — from one client or many — coalesce on
//!   the tier's single-flight memos exactly the way `TraceStore`
//!   single-flights generation: N clients asking for the same cold point run
//!   **one** simulation, observable as [`StoreHealth`] `coalesced`/`hits`
//!   (`StoreHealth::result_cache_hit_rate` is the service's headline
//!   metric);
//! * malformed, oversized or unserviceable request lines get typed error
//!   responses on the same connection — never a panic, never a silent
//!   disconnect.
//!
//! # Protocol
//!
//! One JSON object per line in, one or more JSON objects per line out.
//! Every response carries `"ok"` and echoes the request's `"id"` (if any).
//!
//! | Request | Response lines |
//! |---|---|
//! | `{"req":"ping"}` | `{"ok":true,"kind":"pong"}` |
//! | `{"req":"health"}` | one `kind:"health"` line with the tier's [`StoreHealth`] counters |
//! | `{"req":"point","app":"ammp","sets":64,"ways":2}` | one `kind:"result"` line with the measurement |
//! | `{"req":"sweep","app":"ammp","org":"selective_sets"}` | one `kind:"result"` line per point *as each completes*, then a `kind:"done"` summary with the objective's best point |
//! | `{"req":"shutdown"}` | `{"ok":true,"kind":"bye"}`, then the whole server drains and exits |
//!
//! `point` and `sweep` accept optional `"system"` (`"base"` default,
//! `"in_order"`), `"side"` (`"data"` default, `"instruction"`), `"org"`
//! (`"selective_sets"` default, `"selective_ways"`, `"hybrid"`) and
//! `"objective"` (`"edp"`, `"ed2p"`, `"delay"`; defaults to the runner's
//! configured objective, i.e. `RESCACHE_OBJECTIVE` or EDP); `point`
//! omitting `sets`/`ways` measures the full-size baseline. Applications
//! resolve through [`spec::profile`] first, then the
//! [`WorkloadRegistry`] scenario names. Every `kind:"result"` line carries
//! a `"latency"` block (delayed-hit counts and mean stall cycles) next to
//! the energy numbers, and a sweep's `kind:"done"` summary names the
//! objective that ranked its best point.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use rescache_energy::Objective;
use rescache_trace::{spec, AppProfile, WorkloadRegistry};

use crate::experiment::parallel::effective_workers;
use crate::experiment::runner::{Measurement, Runner};
use crate::experiment::shared_tier::StoreHealth;
use crate::json::{obj, Json};
use crate::org::{CachePoint, ConfigSpace, Organization};
use crate::system::{ResizableCacheSide, SystemConfig};

/// Default cap on one request line. Real requests are under 200 bytes; the
/// cap exists so a stuck or hostile client cannot make a connection thread
/// buffer unbounded memory. An oversized line is answered with a typed
/// error and skipped — the connection stays usable.
pub const DEFAULT_MAX_LINE_BYTES: usize = 64 * 1024;

/// How often an idle connection re-checks the shutdown flag. Connection
/// reads use this as their socket timeout so that [`ServerHandle::stop`]
/// drains within one interval even when clients hold connections open
/// without sending anything — a bounded shutdown, not one hostage to the
/// slowest client.
const SHUTDOWN_POLL: Duration = Duration::from_millis(100);

/// The address the sweep service binds when `RESCACHE_SERVE_ADDR` is unset.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7878";

/// Configuration of one [`SweepServer`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Longest request line accepted, in bytes.
    pub max_line_bytes: usize,
    /// Worker threads a single sweep request shards its points across.
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: DEFAULT_ADDR.to_string(),
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            workers: effective_workers(),
        }
    }
}

impl ServeConfig {
    /// The configuration the environment selects: `RESCACHE_SERVE_ADDR`
    /// overrides the bind address, `RESCACHE_THREADS` (via
    /// [`effective_workers`]) the sweep fan-out.
    pub fn from_env() -> Self {
        let mut config = Self::default();
        if let Ok(addr) = std::env::var("RESCACHE_SERVE_ADDR") {
            config.addr = addr;
        }
        config
    }
}

/// A handle for stopping a running [`SweepServer`] from another thread (or
/// from a connection thread serving a `shutdown` request).
#[derive(Debug, Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    /// The address the server is listening on (with the ephemeral port
    /// resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the accept loop to exit. The flag alone is not enough — the
    /// loop is blocked in `accept` — so a throwaway self-connection wakes
    /// it. Idempotent; safe from any thread.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Failure is fine: the listener may already be gone.
        let _ = TcpStream::connect(self.addr);
    }
}

/// The sweep service (see the module documentation).
#[derive(Debug)]
pub struct SweepServer {
    listener: TcpListener,
    runner: Runner,
    config: ServeConfig,
    shutdown: Arc<AtomicBool>,
}

impl SweepServer {
    /// Binds the service (resolving an ephemeral port if `addr` asked for
    /// one) without accepting yet.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn bind(runner: Runner, config: ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Self {
            listener,
            runner,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (with the ephemeral port resolved).
    ///
    /// # Errors
    ///
    /// Propagates the OS error if the socket has no local address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A stop handle usable from any thread.
    ///
    /// # Errors
    ///
    /// Propagates the OS error if the socket has no local address.
    pub fn handle(&self) -> std::io::Result<ServerHandle> {
        Ok(ServerHandle {
            addr: self.local_addr()?,
            shutdown: Arc::clone(&self.shutdown),
        })
    }

    /// Runs the accept loop until [`ServerHandle::stop`] is called (or a
    /// client sends `shutdown`). Each connection is served on its own
    /// thread; the loop drains before returning, so a clean shutdown never
    /// drops an in-flight response mid-line.
    ///
    /// # Errors
    ///
    /// Returns an error only if obtaining the stop handle fails; accept
    /// errors on individual connections are absorbed (logged) and the loop
    /// continues.
    pub fn serve(self) -> std::io::Result<()> {
        let handle = self.handle()?;
        let mut connections = Vec::new();
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => {
                    let runner = self.runner.clone();
                    let config = self.config.clone();
                    let handle = handle.clone();
                    connections.push(std::thread::spawn(move || {
                        if let Err(e) = serve_connection(&runner, stream, &config, &handle) {
                            // A vanished client is normal server life, not a
                            // server failure.
                            eprintln!("rescache-serve: connection ended: {e}");
                        }
                    }));
                }
                Err(e) => eprintln!("rescache-serve: accept failed: {e}"),
            }
        }
        for connection in connections {
            let _ = connection.join();
        }
        Ok(())
    }

    /// Convenience: serve on a background thread, returning the stop handle
    /// and the join handle.
    ///
    /// # Errors
    ///
    /// Propagates the OS error if the socket has no local address.
    pub fn spawn(self) -> std::io::Result<(ServerHandle, std::thread::JoinHandle<()>)> {
        let handle = self.handle()?;
        let join = std::thread::spawn(move || {
            if let Err(e) = self.serve() {
                eprintln!("rescache-serve: server exited with error: {e}");
            }
        });
        Ok((handle, join))
    }
}

/// Outcome of reading one request line.
enum LineOutcome {
    /// A complete line (without the trailing newline).
    Line(String),
    /// The line exceeded the cap; the excess was drained to the next
    /// newline so the connection can continue.
    Oversized,
    /// The client closed the connection.
    Eof,
}

/// Reads one `\n`-terminated line, enforcing the byte cap without ever
/// buffering more than the cap. (`BufRead::read_line` would buffer the
/// whole oversized line first — exactly the unbounded allocation the cap
/// exists to prevent.)
fn read_request_line(
    reader: &mut impl BufRead,
    max_line_bytes: usize,
    shutdown: &AtomicBool,
) -> std::io::Result<LineOutcome> {
    let mut line: Vec<u8> = Vec::new();
    let mut discarding = false;
    loop {
        let buf = match reader.fill_buf() {
            Ok(buf) => buf,
            // A socket read timeout (see SHUTDOWN_POLL): check the flag and
            // keep waiting — any partial line gathered so far is preserved.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(LineOutcome::Eof);
                }
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if buf.is_empty() {
            return Ok(if discarding {
                LineOutcome::Oversized
            } else if line.is_empty() {
                LineOutcome::Eof
            } else {
                // A final unterminated line still counts as a request.
                LineOutcome::Line(String::from_utf8_lossy(&line).into_owned())
            });
        }
        let newline = buf.iter().position(|&b| b == b'\n');
        let take = newline.map_or(buf.len(), |i| i + 1);
        if !discarding {
            let body = newline.map_or(take, |i| i);
            if line.len() + body > max_line_bytes {
                line.clear();
                discarding = true;
            } else {
                line.extend_from_slice(&buf[..body]);
            }
        }
        reader.consume(take);
        if newline.is_some() {
            return Ok(if discarding {
                LineOutcome::Oversized
            } else {
                LineOutcome::Line(String::from_utf8_lossy(&line).into_owned())
            });
        }
    }
}

/// Serves one client connection: read a request line, dispatch, repeat
/// until EOF or shutdown.
fn serve_connection(
    runner: &Runner,
    stream: TcpStream,
    config: &ServeConfig,
    handle: &ServerHandle,
) -> std::io::Result<()> {
    // Reads poll so a shutdown drains even past idle clients; the timeout
    // never surfaces to the protocol (read_request_line absorbs it).
    stream.set_read_timeout(Some(SHUTDOWN_POLL))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let line = match read_request_line(&mut reader, config.max_line_bytes, &handle.shutdown)? {
            LineOutcome::Eof => return Ok(()),
            LineOutcome::Oversized => {
                runner.trace_store().tier().health().note_request();
                write_line(
                    &mut writer,
                    &error_response(
                        Json::Null,
                        &format!(
                            "request line exceeds {} bytes; line skipped",
                            config.max_line_bytes
                        ),
                    ),
                )?;
                continue;
            }
            LineOutcome::Line(line) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        runner.trace_store().tier().health().note_request();
        match dispatch(runner, &line, config, &mut writer)? {
            Flow::Continue => {}
            Flow::Shutdown => {
                writer.flush()?;
                handle.stop();
                return Ok(());
            }
        }
    }
}

/// Whether the connection (and, on `Shutdown`, the whole server) continues
/// after a request.
enum Flow {
    Continue,
    Shutdown,
}

/// Parses and executes one request line, writing the response line(s).
fn dispatch(
    runner: &Runner,
    line: &str,
    config: &ServeConfig,
    writer: &mut impl Write,
) -> std::io::Result<Flow> {
    let request = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            write_line(
                &mut *writer,
                &error_response(Json::Null, &format!("malformed request: {e}")),
            )?;
            return Ok(Flow::Continue);
        }
    };
    let id = request.get("id").cloned().unwrap_or(Json::Null);
    let verb = request.get("req").and_then(Json::as_str).unwrap_or("");
    match verb {
        "ping" => {
            write_line(
                writer,
                &obj([
                    ("id", id),
                    ("ok", Json::Bool(true)),
                    ("kind", Json::Str("pong".into())),
                ]),
            )?;
            Ok(Flow::Continue)
        }
        "health" => {
            let health = runner.trace_store().tier().health_snapshot();
            write_line(writer, &health_response(id, &health))?;
            Ok(Flow::Continue)
        }
        "shutdown" => {
            write_line(
                writer,
                &obj([
                    ("id", id),
                    ("ok", Json::Bool(true)),
                    ("kind", Json::Str("bye".into())),
                ]),
            )?;
            Ok(Flow::Shutdown)
        }
        "point" => {
            match parse_target(&request, runner.config().objective) {
                Ok(target) => serve_point(runner, &request, id, &target, writer)?,
                Err(e) => write_line(&mut *writer, &error_response(id, &e))?,
            }
            Ok(Flow::Continue)
        }
        "sweep" => {
            match parse_target(&request, runner.config().objective) {
                Ok(target) => serve_sweep(runner, id, &target, config.workers, writer)?,
                Err(e) => write_line(&mut *writer, &error_response(id, &e))?,
            }
            Ok(Flow::Continue)
        }
        "" => {
            write_line(
                writer,
                &error_response(id, "missing \"req\" field (string)"),
            )?;
            Ok(Flow::Continue)
        }
        other => {
            write_line(
                writer,
                &error_response(
                    id,
                    &format!(
                        "unknown request {other:?} (want ping, health, point, sweep or shutdown)"
                    ),
                ),
            )?;
            Ok(Flow::Continue)
        }
    }
}

/// The (application, system, organization, side) every simulation request
/// names, with protocol defaults applied.
struct Target {
    app: AppProfile,
    system: SystemConfig,
    organization: Organization,
    side: ResizableCacheSide,
    objective: Objective,
}

/// Resolves a request's simulation target, with a protocol-level error
/// string on anything unresolvable. `default_objective` is the runner's
/// configured objective; a request's `"objective"` field overrides it for
/// that request only.
fn parse_target(request: &Json, default_objective: Objective) -> Result<Target, String> {
    let name = request
        .get("app")
        .and_then(Json::as_str)
        .ok_or("missing \"app\" field (string)")?;
    let app = spec::profile(name)
        .or_else(|| WorkloadRegistry::builtin().get(name).map(|w| w.profile()))
        .ok_or_else(|| format!("unknown application {name:?}"))?;
    // `with_env_policy`: the serving process honours `RESCACHE_POLICY`
    // (the policy lands in the hierarchy config and so in every memo key).
    let system = match request.get("system").and_then(Json::as_str) {
        None | Some("base") => SystemConfig::base().with_env_policy(),
        Some("in_order") => SystemConfig::in_order().with_env_policy(),
        Some(other) => return Err(format!("unknown system {other:?} (want base or in_order)")),
    };
    let organization = match request.get("org").and_then(Json::as_str) {
        None | Some("selective_sets") => Organization::SelectiveSets,
        Some("selective_ways") => Organization::SelectiveWays,
        Some("hybrid") => Organization::Hybrid,
        Some(other) => {
            return Err(format!(
                "unknown org {other:?} (want selective_sets, selective_ways or hybrid)"
            ))
        }
    };
    let side = match request.get("side").and_then(Json::as_str) {
        None | Some("data") => ResizableCacheSide::Data,
        Some("instruction") => ResizableCacheSide::Instruction,
        Some(other) => return Err(format!("unknown side {other:?} (want data or instruction)")),
    };
    let objective = match request.get("objective").and_then(Json::as_str) {
        None => default_objective,
        Some(tag) => Objective::from_tag(tag)
            .ok_or_else(|| format!("unknown objective {tag:?} (want edp, ed2p or delay)"))?,
    };
    Ok(Target {
        app,
        system,
        organization,
        side,
        objective,
    })
}

/// Runs one target point through the memoized runner. The point is already
/// validated against the organization's configuration space, so this cannot
/// fail.
fn run_point(runner: &Runner, target: &Target, point: Option<CachePoint>) -> Measurement {
    let tag_bits = match point {
        Some(_) if target.organization.needs_resizing_tag_bits() => target
            .side
            .config_of(&target.system.hierarchy)
            .resizing_tag_bits(),
        _ => 0,
    };
    match target.side {
        ResizableCacheSide::Data => {
            runner.run_static(&target.app, &target.system, point, None, tag_bits, 0)
        }
        ResizableCacheSide::Instruction => {
            runner.run_static(&target.app, &target.system, None, point, 0, tag_bits)
        }
    }
}

/// Serves a `point` request: one simulation (baseline when `sets`/`ways`
/// are omitted), one `kind:"result"` line.
fn serve_point(
    runner: &Runner,
    request: &Json,
    id: Json,
    target: &Target,
    writer: &mut impl Write,
) -> std::io::Result<()> {
    let point = match (request.get("sets"), request.get("ways")) {
        (None, None) => None,
        (Some(sets), Some(ways)) => {
            let (Some(sets), Some(ways)) = (sets.as_u64(), ways.as_u64()) else {
                return write_line(
                    writer,
                    &error_response(id, "\"sets\" and \"ways\" must be non-negative integers"),
                );
            };
            let point = CachePoint {
                sets,
                ways: ways.min(u64::from(u32::MAX)) as u32,
            };
            // Validating against the organization's space turns a geometry
            // the engines cannot run (non-power-of-two sets, zero ways)
            // into a typed protocol error instead of an engine panic.
            let space = match config_space(target) {
                Ok(space) => space,
                Err(e) => return write_line(writer, &error_response(id, &e)),
            };
            if !space.points().contains(&point) {
                return write_line(
                    writer,
                    &error_response(
                        id,
                        &format!(
                            "point {}x{} is not offered by {:?} on this cache",
                            point.sets, point.ways, target.organization
                        ),
                    ),
                );
            }
            Some(point)
        }
        _ => {
            return write_line(
                writer,
                &error_response(id, "give both \"sets\" and \"ways\", or neither"),
            )
        }
    };
    let measurement = run_point(runner, target, point);
    runner.trace_store().tier().health().note_served();
    write_line(writer, &result_response(id, point, &measurement))
}

/// Serves a `sweep` request: shards the organization's points across worker
/// threads sharing one atomic cursor, streams each `kind:"result"` line as
/// its simulation completes (coalescing with every concurrent request
/// through the tier memos), then writes the `kind:"done"` summary with the
/// best point under the request's objective (EDP by default).
fn serve_sweep(
    runner: &Runner,
    id: Json,
    target: &Target,
    workers: usize,
    writer: &mut impl Write,
) -> std::io::Result<()> {
    let space = match config_space(target) {
        Ok(space) => space,
        Err(e) => return write_line(writer, &error_response(id, &e)),
    };
    let points = space.points();
    let base = run_point(runner, target, None);

    let (tx, rx) = mpsc::channel::<(CachePoint, Measurement)>();
    let cursor = AtomicUsize::new(0);
    let mut evaluated: Vec<(CachePoint, Measurement)> = Vec::with_capacity(points.len());
    let mut write_error = None;
    std::thread::scope(|scope| {
        let cursor = &cursor;
        for _ in 0..workers.clamp(1, points.len().max(1)) {
            let tx = tx.clone();
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(point) = points.get(i) else { break };
                let measurement = run_point(runner, target, Some(*point));
                if tx.send((*point, measurement)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        // Stream results in completion order; the done line carries the
        // summary, so clients needing sweep order key on (sets, ways).
        for (point, measurement) in rx {
            runner.trace_store().tier().health().note_served();
            if let Err(e) = write_line(
                &mut *writer,
                &result_response(id.clone(), Some(point), &measurement),
            ) {
                write_error = Some(e);
                // Keep draining: the workers still fill the shared memo
                // tier, and the scope must not deadlock on a full channel.
            }
            evaluated.push((point, measurement));
        }
    });
    if let Some(e) = write_error {
        return Err(e);
    }

    let base_ed = base.energy_delay();
    let objective = target.objective;
    let best = evaluated
        .iter()
        .min_by(|a, b| a.1.score(objective).total_cmp(&b.1.score(objective)))
        .copied();
    let Some((best_point, best_measurement)) = best else {
        return write_line(writer, &error_response(id, "configuration space was empty"));
    };
    write_line(
        writer,
        &obj([
            ("id", id),
            ("ok", Json::Bool(true)),
            ("kind", Json::Str("done".into())),
            ("points", Json::Num(evaluated.len() as f64)),
            ("objective", Json::Str(objective.tag().into())),
            (
                "best",
                obj([
                    ("sets", Json::Num(best_point.sets as f64)),
                    ("ways", Json::Num(f64::from(best_point.ways))),
                ]),
            ),
            ("best_score", Json::Num(best_measurement.score(objective))),
            (
                "edp_reduction_percent",
                Json::Num(best_measurement.energy_delay().reduction_vs(&base_ed)),
            ),
        ]),
    )
}

/// The configuration space the target's organization offers on its side's
/// cache, as a protocol error when inapplicable (e.g. selective-ways on a
/// direct-mapped cache).
fn config_space(target: &Target) -> Result<ConfigSpace, String> {
    ConfigSpace::enumerate(
        target.side.config_of(&target.system.hierarchy),
        target.organization,
    )
    .map_err(|e| format!("cannot enumerate configuration space: {e}"))
}

/// One measurement as a `kind:"result"` response line.
fn result_response(id: Json, point: Option<CachePoint>, m: &Measurement) -> Json {
    let point_json = match point {
        Some(p) => obj([
            ("sets", Json::Num(p.sets as f64)),
            ("ways", Json::Num(f64::from(p.ways))),
        ]),
        None => Json::Str("full".into()),
    };
    obj([
        ("id", id),
        ("ok", Json::Bool(true)),
        ("kind", Json::Str("result".into())),
        ("point", point_json),
        ("cycles", Json::Num(m.cycles as f64)),
        ("ipc", Json::Num(m.ipc)),
        ("energy_pj", Json::Num(m.energy_pj)),
        ("edp", Json::Num(m.energy_delay().product())),
        ("l1d_miss_ratio", Json::Num(m.l1d_miss_ratio)),
        ("l1i_miss_ratio", Json::Num(m.l1i_miss_ratio)),
        (
            "latency",
            obj([
                ("delayed_hits", Json::Num(m.latency.delayed_hits as f64)),
                (
                    "delayed_hit_cycles",
                    Json::Num(m.latency.delayed_hit_cycles as f64),
                ),
                (
                    "mean_delayed_hit_cycles",
                    Json::Num(m.latency.mean_delayed_hit_cycles()),
                ),
                (
                    "d_primary_misses",
                    Json::Num(m.latency.d_primary_misses as f64),
                ),
                ("d_miss_cycles", Json::Num(m.latency.d_miss_cycles as f64)),
                ("mean_miss_cycles", Json::Num(m.latency.mean_miss_cycles())),
            ]),
        ),
    ])
}

/// The tier's [`StoreHealth`] as a `kind:"health"` response line.
fn health_response(id: Json, health: &StoreHealth) -> Json {
    obj([
        ("id", id),
        ("ok", Json::Bool(true)),
        ("kind", Json::Str("health".into())),
        ("hits", Json::Num(health.hits as f64)),
        ("misses", Json::Num(health.misses as f64)),
        ("coalesced", Json::Num(health.coalesced as f64)),
        ("requests", Json::Num(health.requests as f64)),
        ("served", Json::Num(health.served as f64)),
        ("evictions", Json::Num(health.evictions as f64)),
        ("regenerations", Json::Num(health.regenerations as f64)),
        ("retries", Json::Num(health.retries as f64)),
        ("quarantines", Json::Num(health.quarantines as f64)),
        ("lock_steals", Json::Num(health.lock_steals as f64)),
        ("warnings", Json::Num(health.warnings as f64)),
        ("degraded", Json::Bool(health.degraded)),
        (
            "result_cache_hit_rate",
            health.result_cache_hit_rate().map_or(Json::Null, Json::Num),
        ),
    ])
}

/// A typed `ok:false` response line.
fn error_response(id: Json, message: &str) -> Json {
    obj([
        ("id", id),
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message.to_string())),
    ])
}

/// Writes one response line (the protocol is strictly line-delimited).
fn write_line(writer: &mut impl Write, response: &Json) -> std::io::Result<()> {
    writeln!(writer, "{}", response.render())?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_request_line_splits_caps_and_recovers() {
        let live = AtomicBool::new(false);
        let input = b"{\"req\":\"ping\"}\nshort\n".to_vec();
        let mut reader = std::io::BufReader::new(std::io::Cursor::new(input));
        let LineOutcome::Line(first) = read_request_line(&mut reader, 64, &live).unwrap() else {
            panic!("first line");
        };
        assert_eq!(first, "{\"req\":\"ping\"}");
        let LineOutcome::Line(second) = read_request_line(&mut reader, 64, &live).unwrap() else {
            panic!("second line");
        };
        assert_eq!(second, "short");
        assert!(matches!(
            read_request_line(&mut reader, 64, &live).unwrap(),
            LineOutcome::Eof
        ));

        // An oversized line is reported and fully drained, leaving the next
        // line intact — and the reader never buffers more than the cap.
        let huge = format!("{}\nnext\n", "x".repeat(1000));
        let mut reader = std::io::BufReader::new(std::io::Cursor::new(huge.into_bytes()));
        assert!(matches!(
            read_request_line(&mut reader, 16, &live).unwrap(),
            LineOutcome::Oversized
        ));
        let LineOutcome::Line(next) = read_request_line(&mut reader, 16, &live).unwrap() else {
            panic!("line after oversized");
        };
        assert_eq!(next, "next");

        // A final unterminated line still parses as a request.
        let mut reader = std::io::BufReader::new(std::io::Cursor::new(b"tail".to_vec()));
        let LineOutcome::Line(tail) = read_request_line(&mut reader, 16, &live).unwrap() else {
            panic!("unterminated tail");
        };
        assert_eq!(tail, "tail");
    }

    #[test]
    fn parse_target_resolves_defaults_and_rejects_unknowns() {
        let ok = Json::parse(r#"{"req":"sweep","app":"ammp"}"#).unwrap();
        let target = parse_target(&ok, Objective::Edp).expect("defaults apply");
        assert_eq!(target.app.name, "ammp");
        assert_eq!(target.organization, Organization::SelectiveSets);
        assert_eq!(target.side, ResizableCacheSide::Data);
        assert_eq!(target.objective, Objective::Edp);
        // The runner's configured objective is the default the request
        // inherits when it names none.
        let target = parse_target(&ok, Objective::Delay).expect("defaults apply");
        assert_eq!(target.objective, Objective::Delay);

        let scenario = Json::parse(
            r#"{"app":"pointer_chase","org":"hybrid","side":"instruction","system":"in_order","objective":"ed2p"}"#,
        )
        .unwrap();
        let target = parse_target(&scenario, Objective::Edp).expect("registry workloads resolve");
        assert_eq!(target.app.name, "pointer_chase");
        assert_eq!(target.organization, Organization::Hybrid);
        assert_eq!(target.side, ResizableCacheSide::Instruction);
        assert_eq!(target.objective, Objective::Ed2p);

        for bad in [
            r#"{"req":"sweep"}"#,
            r#"{"app":"no_such_app"}"#,
            r#"{"app":"ammp","org":"bogus"}"#,
            r#"{"app":"ammp","side":"bogus"}"#,
            r#"{"app":"ammp","system":"bogus"}"#,
            r#"{"app":"ammp","objective":"bogus"}"#,
        ] {
            let request = Json::parse(bad).unwrap();
            assert!(parse_target(&request, Objective::Edp).is_err(), "{bad}");
        }
    }
}
