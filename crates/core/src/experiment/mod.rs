//! Experiment drivers: one module per table/figure of the paper, built on a
//! shared [`Runner`] that turns (application, system, cache setup) into a
//! [`Measurement`].
//!
//! | Paper artefact | Driver |
//! |---|---|
//! | Table 1 (hybrid size grid) | [`crate::org::hybrid_grid`] |
//! | Figure 4 (orgs vs. associativity) | [`org_comparison::organization_vs_associativity`] |
//! | Figure 5 (orgs per application, 4-way) | [`org_comparison::per_app_org_comparison`] |
//! | Figure 6 (hybrid effectiveness) | [`hybrid::hybrid_effectiveness`] |
//! | Figure 7 (d-cache static vs. dynamic) | [`strategy_cmp::static_vs_dynamic`] |
//! | Figure 8 (i-cache static vs. dynamic) | [`strategy_cmp::static_vs_dynamic`] |
//! | Figure 9 (resizing both L1s) | [`dual::dual_resizing`] |

pub mod dual;
pub mod hybrid;
pub mod org_comparison;
pub mod parallel;
pub mod report;
pub mod runner;
pub mod server;
pub mod shared_tier;
pub mod strategy_cmp;
pub mod trace_store;

pub use dual::{dual_resizing, DualOutcome, DualRow};
pub use hybrid::hybrid_effectiveness;
pub use org_comparison::{
    organization_vs_associativity, per_app_org_comparison, OrgAssocPoint, PerAppOrgRow,
};
pub use parallel::{effective_workers, parallel_map};
pub use report::{format_table, mean};
pub use runner::{
    BestSummary, DynamicOutcome, Measurement, RunSetup, Runner, RunnerConfig, StaticOutcome,
};
pub use server::{ServeConfig, ServerHandle, SweepServer};
pub use shared_tier::{
    EntryLockGuard, HealthCounters, LockOutcome, LockParams, Memo, SharedTier, StoreHealth,
    DEFAULT_RESIDENT_CAP,
};
pub use strategy_cmp::{static_vs_dynamic, StrategyRow};
pub use trace_store::{StoreSource, StoreSourceKind, TraceStore};
