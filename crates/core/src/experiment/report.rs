//! Plain-text table formatting shared by the benches and examples.

/// Arithmetic mean of a slice (0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Formats a table with a header row, aligning every column to its widest
/// cell. Intended for the bench harness output that mirrors the paper's
/// figures.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let columns = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(columns) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            line.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * columns));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_values() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn table_alignment() {
        let table = format_table(
            &["app", "reduction"],
            &[
                vec!["ammp".into(), "12.5".into()],
                vec!["compress".into(), "3.1".into()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("app"));
        assert!(lines[2].starts_with("ammp"));
        assert!(lines[3].starts_with("compress"));
        // Columns align: "reduction" starts at the same offset in all rows.
        let offset = lines[0].find("reduction").unwrap();
        assert_eq!(lines[2].find("12.5").unwrap(), offset);
    }

    #[test]
    fn table_handles_wide_cells() {
        let table = format_table(&["x"], &[vec!["a-very-wide-cell".into()], vec!["b".into()]]);
        assert!(table.contains("a-very-wide-cell"));
    }
}
