//! The shared store/memo tier: one concurrency-safe handle holding every
//! cross-runner cache — generated traces, streaming-persist markers, memoized
//! static simulations — plus the fault policy, health accounting, degraded
//! mode and the cross-process entry lock they all share.
//!
//! This is the ROADMAP's named prereq for the sweep server: any number of
//! [`Runner`](crate::experiment::Runner) instances (or server connections)
//! clone one `SharedTier` and hit the same single-flight memos, so a sweep
//! fanned out over threads generates each trace and runs each simulation
//! exactly once per process. The tier is also where the robustness
//! machinery lives:
//!
//! * **[`Memo`]** — the per-key `OnceLock` single-flight map, with *poison
//!   recovery*: a worker that panics mid-generation poisons nothing
//!   permanently, because the outer mutex only guards slot lookup (safe to
//!   recover — the map's values are write-once `OnceLock`s) and a panicked
//!   `OnceLock` initializer leaves the slot empty for the next caller.
//! * **[`HealthCounters`] / [`StoreHealth`]** — every recovery is counted
//!   (hits, misses, regenerations, retries, quarantines, lock steals,
//!   warnings, degraded flag), so "the store survived" is observable in
//!   tests and in the bench JSON rather than anecdotal.
//! * **degraded mode** — after a disk-full or unwritable-directory failure
//!   the tier drops to in-memory-only operation ([`SharedTier::active_dir`]
//!   returns `None`) with a one-time warning, instead of hammering a dead
//!   disk on every request.
//! * **[`SharedTier::lock_entry`]** — a cross-process advisory lock file
//!   (`<entry>.lock`) with a stale-lock timeout, so two *processes* sharing
//!   `RESCACHE_TRACE_DIR` don't both generate the same cold entry; liveness
//!   wins over deduplication (a deadline expiry proceeds unlocked, and a
//!   crashed writer's stale lock is stolen).

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant, SystemTime};

use rescache_trace::IoPolicy;

/// Default cap on resident full traces (see [`SharedTier::resident_cap`]):
/// generous for batch sweeps (a full 12-app × warm/measure sweep keeps under
/// half of this), while bounding a long-lived server replaying arbitrarily
/// many distinct workloads.
pub const DEFAULT_RESIDENT_CAP: usize = 64;

/// A shared once-per-key memoization map: the outer mutex is held only to
/// fetch or insert a slot, while the per-key [`OnceLock`] serializes
/// (blocking) the single computation of that key's value.
///
/// Both layers tolerate a panicking computation. The mutex is recovered from
/// poisoning (`PoisonError::into_inner`) — sound because the guarded state
/// is only the slot map, whose values are write-once cells that are either
/// fully initialized or untouched. A panicked initializer leaves its
/// `OnceLock` empty, so the next caller for that key simply runs the
/// computation again.
#[derive(Debug)]
pub struct Memo<K, V> {
    map: Arc<Mutex<HashMap<K, Arc<OnceLock<V>>>>>,
}

impl<K, V> Clone for Memo<K, V> {
    fn clone(&self) -> Self {
        Self {
            map: Arc::clone(&self.map),
        }
    }
}

impl<K, V> Default for Memo<K, V> {
    fn default() -> Self {
        Self {
            map: Arc::default(),
        }
    }
}

impl<K: std::hash::Hash + Eq, V> Memo<K, V> {
    /// Fetches (inserting if absent) the single-flight slot for `key`. The
    /// caller runs `slot.get_or_init(..)` *outside* the map lock, so slow
    /// computations never serialize unrelated keys.
    pub fn slot(&self, key: K) -> Arc<OnceLock<V>> {
        let mut map = self.map.lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(map.entry(key).or_default())
    }

    /// Whether `key`'s slot exists and has been initialized.
    pub fn initialized(&self, key: &K) -> bool {
        let map = self.map.lock().unwrap_or_else(PoisonError::into_inner);
        map.get(key).is_some_and(|slot| slot.get().is_some())
    }

    /// Runs `f` over the slot map under the lock (used for prefix scans).
    pub fn with_map<R>(&self, f: impl FnOnce(&HashMap<K, Arc<OnceLock<V>>>) -> R) -> R {
        let map = self.map.lock().unwrap_or_else(PoisonError::into_inner);
        f(&map)
    }

    /// Removes `key`'s slot, so the next request recomputes.
    pub fn remove(&self, key: &K) {
        let mut map = self.map.lock().unwrap_or_else(PoisonError::into_inner);
        map.remove(key);
    }

    /// Number of slots holding an initialized value.
    pub fn initialized_count(&self) -> usize {
        let map = self.map.lock().unwrap_or_else(PoisonError::into_inner);
        map.values().filter(|slot| slot.get().is_some()).count()
    }
}

/// Live recovery counters of one shared tier (atomics: every recording site
/// is on a concurrent path). Read via [`HealthCounters::snapshot`].
#[derive(Debug, Default)]
pub struct HealthCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    regenerations: AtomicU64,
    retries: AtomicU64,
    quarantines: AtomicU64,
    lock_steals: AtomicU64,
    warnings: AtomicU64,
    evictions: AtomicU64,
    requests: AtomicU64,
    served: AtomicU64,
    coalesced: AtomicU64,
    degraded: AtomicBool,
}

impl HealthCounters {
    /// A request served from memoized or persisted state.
    pub fn note_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// A cold request that ran its generation/simulation (the single-flight
    /// initializer) — bounded by the number of distinct keys per process.
    pub fn note_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// A generation forced by a fault (corrupt entry, failed read, crashed
    /// sibling) rather than by a cold key.
    pub fn note_regeneration(&self) {
        self.regenerations.fetch_add(1, Ordering::Relaxed);
    }

    /// One transient-error retry absorbed by the bounded-backoff loop.
    pub fn note_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// A corrupt entry renamed to its `.corrupt` sidecar.
    pub fn note_quarantine(&self) {
        self.quarantines.fetch_add(1, Ordering::Relaxed);
    }

    /// A stale cross-process lock stolen from a crashed writer.
    pub fn note_lock_steal(&self) {
        self.lock_steals.fetch_add(1, Ordering::Relaxed);
    }

    /// One warning printed (warnings are also counted so tests can assert
    /// the "one-time" in one-time warning).
    pub fn note_warning(&self) {
        self.warnings.fetch_add(1, Ordering::Relaxed);
    }

    /// A resident full trace evicted by the [`SharedTier::resident_cap`]
    /// bound.
    pub fn note_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// One protocol request accepted by the sweep service.
    pub fn note_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// One simulation result line served back to a sweep-service client.
    pub fn note_served(&self) {
        self.served.fetch_add(1, Ordering::Relaxed);
    }

    /// A request that neither found an initialized memo slot nor ran the
    /// computation itself: it blocked on a sibling's in-flight single-flight
    /// initializer and shared the result. The server's dedup guarantee —
    /// N concurrent clients, one simulation — is `coalesced + hits` covering
    /// everything beyond the single miss per distinct key.
    pub fn note_coalesced(&self) {
        self.coalesced.fetch_add(1, Ordering::Relaxed);
    }

    /// Flips the tier into degraded (in-memory-only) mode; true only for the
    /// caller that performed the transition — which is the caller that must
    /// print the one-time warning.
    pub fn mark_degraded(&self) -> bool {
        !self.degraded.swap(true, Ordering::Relaxed)
    }

    /// Whether the tier has degraded to in-memory-only operation.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> StoreHealth {
        StoreHealth {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            regenerations: self.regenerations.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            quarantines: self.quarantines.load(Ordering::Relaxed),
            lock_steals: self.lock_steals.load(Ordering::Relaxed),
            warnings: self.warnings.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time snapshot of a tier's [`HealthCounters`]: the observable
/// the stress tests assert on and the bench JSON reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreHealth {
    /// Requests served from memoized or persisted state.
    pub hits: u64,
    /// Cold single-flight generations/simulations.
    pub misses: u64,
    /// Generations forced by faults rather than cold keys.
    pub regenerations: u64,
    /// Transient-error retries absorbed by bounded backoff.
    pub retries: u64,
    /// Corrupt entries quarantined to `.corrupt` sidecars.
    pub quarantines: u64,
    /// Stale cross-process locks stolen from crashed writers.
    pub lock_steals: u64,
    /// Warnings printed.
    pub warnings: u64,
    /// Resident full traces evicted by the resident cap.
    pub evictions: u64,
    /// Protocol requests accepted by the sweep service.
    pub requests: u64,
    /// Result lines served back to sweep-service clients.
    pub served: u64,
    /// Requests that blocked on (and shared) a sibling's in-flight
    /// computation instead of running their own.
    pub coalesced: u64,
    /// Whether the tier is in in-memory-only degraded mode.
    pub degraded: bool,
}

impl StoreHealth {
    /// The fraction of memo lookups answered without running a computation —
    /// the sweep service's headline "result cache hit rate". Coalesced
    /// lookups count as hits (the work was shared, not repeated); returns
    /// `None` before any lookup has happened.
    pub fn result_cache_hit_rate(&self) -> Option<f64> {
        let shared = self.hits + self.coalesced;
        let total = shared + self.misses;
        (total > 0).then(|| shared as f64 / total as f64)
    }
}

/// Timing knobs of the cross-process entry lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockParams {
    /// A lock file older than this is considered abandoned by a crashed
    /// writer and is stolen.
    pub stale_after: Duration,
    /// Sleep between acquisition attempts while another writer holds the
    /// lock.
    pub poll: Duration,
    /// Total time a waiter spends before giving up and proceeding unlocked
    /// (liveness beats cross-process deduplication).
    pub deadline: Duration,
}

impl Default for LockParams {
    fn default() -> Self {
        Self {
            stale_after: Duration::from_secs(10),
            poll: Duration::from_millis(25),
            deadline: Duration::from_secs(30),
        }
    }
}

/// Outcome of one [`SharedTier::lock_entry`] attempt.
#[derive(Debug)]
pub enum LockOutcome {
    /// This caller holds the lock and must generate the entry; the lock file
    /// is removed when the guard drops.
    Acquired(EntryLockGuard),
    /// The entry appeared while waiting (another writer finished): read it
    /// instead of generating.
    EntryAppeared,
    /// The deadline expired with the lock still held: proceed without the
    /// lock — duplicate cross-process work is acceptable, a hang is not.
    Unlocked,
}

/// Holder of one acquired cross-process entry lock; dropping it releases
/// (removes) the lock file. The removal is best-effort and un-policed: a
/// failure merely leaves a stale lock, which the next waiter steals after
/// [`LockParams::stale_after`].
#[derive(Debug)]
pub struct EntryLockGuard {
    path: PathBuf,
}

impl Drop for EntryLockGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// The shared store/memo tier (see the module documentation). Clones share
/// everything — maps, policy, health, degraded flag — which is what makes
/// one tier safely servable to any number of runner instances and threads.
#[derive(Debug, Clone)]
pub struct SharedTier {
    /// Full generated traces, keyed by the trace store's
    /// `(name, fingerprint, seed, total, format)`.
    pub(crate) traces: Memo<crate::experiment::trace_store::StoreKey, rescache_trace::Trace>,
    /// Once-per-process streaming persists (value: whether the entry is now
    /// on disk).
    pub(crate) persists: Memo<crate::experiment::trace_store::StoreKey, bool>,
    /// Memoized static simulations, keyed by the runner's
    /// `(trace key, system, geometries)`.
    pub(crate) sims: Memo<crate::experiment::runner::SimKey, crate::experiment::runner::StaticSim>,
    /// Recency stamps for the resident full-trace map (see
    /// [`SharedTier::resident_cap`]). Lock ordering: this mutex is always
    /// taken *before* the `traces` map mutex, never inside it.
    pub(crate) trace_lru: Arc<Mutex<TraceLru>>,
    policy: IoPolicy,
    dir: Option<PathBuf>,
    lock: LockParams,
    resident_cap: usize,
    health: Arc<HealthCounters>,
}

/// Recency bookkeeping for resident full traces: a monotonic use clock and
/// each key's last-use stamp. Kept beside the `traces` [`Memo`] rather than
/// inside it so eviction policy stays out of the single-flight machinery.
#[derive(Debug, Default)]
pub(crate) struct TraceLru {
    pub(crate) clock: u64,
    pub(crate) last_use: HashMap<crate::experiment::trace_store::StoreKey, u64>,
}

impl Default for SharedTier {
    fn default() -> Self {
        Self::new(None, IoPolicy::none())
    }
}

impl SharedTier {
    /// A tier persisting to `dir` (`None` = in-memory only) with the given
    /// I/O policy.
    pub fn new(dir: Option<PathBuf>, policy: IoPolicy) -> Self {
        Self {
            traces: Memo::default(),
            persists: Memo::default(),
            sims: Memo::default(),
            trace_lru: Arc::default(),
            policy,
            dir,
            lock: LockParams::default(),
            resident_cap: DEFAULT_RESIDENT_CAP,
            health: Arc::default(),
        }
    }

    /// The tier the environment configures: persistence from
    /// `RESCACHE_TRACE_DIR`, fault injection from `RESCACHE_FAULTS`, resident
    /// full-trace cap from `RESCACHE_RESIDENT_TRACES`.
    pub fn from_env() -> Self {
        let tier = Self::new(
            std::env::var_os("RESCACHE_TRACE_DIR").map(PathBuf::from),
            IoPolicy::from_env(),
        );
        match std::env::var("RESCACHE_RESIDENT_TRACES")
            .ok()
            .map(|v| v.trim().parse::<usize>())
        {
            Some(Ok(cap)) => tier.with_resident_cap(cap),
            Some(Err(_)) => {
                eprintln!(
                    "rescache: ignoring unparsable RESCACHE_RESIDENT_TRACES \
                     (want a positive integer); keeping cap {DEFAULT_RESIDENT_CAP}"
                );
                tier
            }
            None => tier,
        }
    }

    /// This tier with the given lock timings (tests shrink them).
    pub fn with_lock_params(mut self, lock: LockParams) -> Self {
        self.lock = lock;
        self
    }

    /// This tier with the given cap on resident full traces (clamped to at
    /// least 1 — the trace being served must stay resident).
    pub fn with_resident_cap(mut self, cap: usize) -> Self {
        self.resident_cap = cap.max(1);
        self
    }

    /// Maximum number of full traces the tier keeps materialized at once;
    /// beyond it, the least-recently-used resident trace is evicted (counted
    /// in [`StoreHealth::evictions`]). Evicted traces are not lost — the next
    /// request re-reads from disk or regenerates, exactly like a cold key.
    pub fn resident_cap(&self) -> usize {
        self.resident_cap
    }

    /// A tier sharing this tier's traces, persists, policy and health but
    /// with an empty simulation memo (benchmarks measuring sweep throughput
    /// must not carry simulations across repetitions).
    pub fn with_fresh_sims(&self) -> Self {
        Self {
            sims: Memo::default(),
            ..self.clone()
        }
    }

    /// The I/O policy every store/codec filesystem operation goes through.
    pub fn policy(&self) -> &IoPolicy {
        &self.policy
    }

    /// The configured persistence directory, degraded or not.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// The persistence directory *if the tier is still willing to use it*:
    /// `None` once degraded mode has latched. Every disk-path decision in
    /// the store goes through this, which is what makes degradation
    /// store-wide and immediate.
    pub fn active_dir(&self) -> Option<&Path> {
        if self.health.is_degraded() {
            None
        } else {
            self.dir.as_deref()
        }
    }

    /// The tier's health counters (recording sites).
    pub fn health(&self) -> &HealthCounters {
        &self.health
    }

    /// A point-in-time snapshot of the tier's health.
    pub fn health_snapshot(&self) -> StoreHealth {
        self.health.snapshot()
    }

    /// Latches degraded (in-memory-only) mode, printing the one-time
    /// warning on the transition. Safe to call from any number of threads —
    /// exactly one prints.
    pub fn degrade(&self, why: &str) {
        if self.health.mark_degraded() {
            self.health.note_warning();
            eprintln!(
                "rescache: trace store degrading to in-memory-only operation ({why}); \
                 subsequent traces stream without persistence"
            );
        }
    }

    /// Acquires the cross-process advisory lock for `entry` (a `.lock`
    /// sibling file), so two processes sharing a store directory don't both
    /// generate the same cold entry. See [`LockOutcome`] for the three ways
    /// this resolves; a stale lock (older than [`LockParams::stale_after`])
    /// is stolen and counted in [`StoreHealth::lock_steals`].
    pub fn lock_entry(&self, entry: &Path) -> LockOutcome {
        let lock_path = Self::lock_path(entry);
        let start = Instant::now();
        loop {
            match self.policy.create_new(&lock_path) {
                Ok(_) => {
                    let guard = EntryLockGuard { path: lock_path };
                    // Recheck after acquiring: the writer we waited on may
                    // have committed the entry between our existence probe
                    // and its lock release.
                    if entry.exists() {
                        return LockOutcome::EntryAppeared;
                    }
                    return LockOutcome::Acquired(guard);
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    if entry.exists() {
                        return LockOutcome::EntryAppeared;
                    }
                    if self.lock_is_stale(&lock_path) {
                        // Best-effort steal; losing the race to another
                        // stealer just means the next create_new attempt
                        // resolves it.
                        if std::fs::remove_file(&lock_path).is_ok() {
                            self.health.note_lock_steal();
                        }
                        continue;
                    }
                }
                Err(_) => {
                    // Injected or real trouble creating the lock file: fall
                    // through to the deadline check and retry — the lock is
                    // an optimization, never a correctness requirement.
                }
            }
            if start.elapsed() >= self.lock.deadline {
                return LockOutcome::Unlocked;
            }
            std::thread::sleep(self.lock.poll);
        }
    }

    /// Whether the lock file's mtime marks it abandoned. An unreadable mtime
    /// (racing removal, filesystem without mtimes) reads as fresh — waiting
    /// is safe, the deadline bounds it. An mtime *in the future* by more than
    /// `stale_after` also reads as stale: that lock was planted under clock
    /// skew (writer on a fast-running clock, or an NTP step after a crash)
    /// and can never *age* past the threshold from here, so treating it as
    /// fresh would make every accessor eat the full deadline on every access,
    /// forever. Small future skew (within `stale_after`) stays fresh — a live
    /// writer a few ticks ahead of us must not lose its lock.
    fn lock_is_stale(&self, lock_path: &Path) -> bool {
        let Ok(modified) = std::fs::metadata(lock_path).and_then(|m| m.modified()) else {
            return false;
        };
        match SystemTime::now().duration_since(modified) {
            Ok(age) => age > self.lock.stale_after,
            Err(skew) => skew.duration() > self.lock.stale_after,
        }
    }

    /// The lock-file sibling of a store entry (`<file>.lock`).
    fn lock_path(entry: &Path) -> PathBuf {
        let mut name = entry.as_os_str().to_os_string();
        name.push(".lock");
        PathBuf::from(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rescache-tier-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn fast_locks() -> LockParams {
        LockParams {
            stale_after: Duration::from_millis(50),
            poll: Duration::from_millis(5),
            deadline: Duration::from_millis(200),
        }
    }

    #[test]
    fn memo_single_flights_and_shares() {
        let memo: Memo<u32, u64> = Memo::default();
        let runs = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let slot = memo.slot(7);
                    let v = *slot.get_or_init(|| {
                        runs.fetch_add(1, Ordering::Relaxed);
                        99
                    });
                    assert_eq!(v, 99);
                });
            }
        });
        assert_eq!(runs.load(Ordering::Relaxed), 1, "one computation per key");
        assert_eq!(memo.initialized_count(), 1);
        assert!(memo.initialized(&7));
        assert!(!memo.initialized(&8));
        memo.remove(&7);
        assert_eq!(memo.initialized_count(), 0);
    }

    #[test]
    fn memo_recovers_from_a_poisoned_map_lock() {
        let memo: Memo<u32, u64> = Memo::default();
        let slot = memo.slot(1);
        slot.set(5).expect("fresh slot");
        // Poison the outer mutex by panicking while holding it.
        let memo_ref = &memo;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            memo_ref.with_map(|_| panic!("poison the map lock"));
        }));
        assert!(result.is_err());
        // Every access path recovers instead of propagating the poison.
        assert!(memo.initialized(&1));
        assert_eq!(memo.slot(1).get(), Some(&5));
        assert_eq!(memo.initialized_count(), 1);
        memo.remove(&1);
        assert_eq!(memo.initialized_count(), 0);
    }

    #[test]
    fn a_panicked_initializer_leaves_the_slot_retryable() {
        // The single-flight guarantee must not turn one worker's panic into
        // a permanently-wedged key: OnceLock's poison-tolerant initializer
        // lets the next caller run the computation again.
        let memo: Memo<u32, u64> = Memo::default();
        let slot = memo.slot(3);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            slot.get_or_init(|| panic!("worker died mid-generation"));
        }));
        assert!(result.is_err());
        assert!(!memo.initialized(&3), "the failed init left nothing behind");
        let v = *memo.slot(3).get_or_init(|| 42);
        assert_eq!(v, 42, "the sibling's retry succeeds");
    }

    #[test]
    fn health_counters_snapshot_and_degrade_once() {
        let tier = SharedTier::new(Some(PathBuf::from("/tmp/never-used")), IoPolicy::none());
        let h = tier.health();
        h.note_hit();
        h.note_hit();
        h.note_miss();
        h.note_regeneration();
        h.note_retry();
        h.note_quarantine();
        h.note_lock_steal();
        assert!(tier.active_dir().is_some());

        // Degrading latches, warns exactly once, and disables the dir.
        tier.degrade("test disk-full");
        tier.degrade("second call must be silent");
        let snap = tier.health_snapshot();
        assert_eq!(
            (snap.hits, snap.misses, snap.regenerations, snap.retries),
            (2, 1, 1, 1)
        );
        assert_eq!((snap.quarantines, snap.lock_steals), (1, 1));
        assert_eq!(snap.warnings, 1, "one-time warning");
        assert!(snap.degraded);
        assert!(tier.active_dir().is_none(), "degraded mode disables disk");
        assert!(tier.dir().is_some(), "the raw dir is still reported");

        // Clones share the health block and the degraded flag.
        assert!(tier.clone().health_snapshot().degraded);
        assert!(tier.with_fresh_sims().health_snapshot().degraded);
    }

    #[test]
    fn lock_entry_acquires_releases_and_rechecks() {
        let dir = temp_dir("lock");
        let entry = dir.join("entry.rctrace");
        let tier =
            SharedTier::new(Some(dir.clone()), IoPolicy::none()).with_lock_params(fast_locks());

        let lock_file = dir.join("entry.rctrace.lock");
        let outcome = tier.lock_entry(&entry);
        assert!(matches!(outcome, LockOutcome::Acquired(_)));
        assert!(lock_file.exists(), "the lock file is held");
        drop(outcome);
        assert!(!lock_file.exists(), "dropping the guard releases the lock");

        // With the entry already present, acquisition short-circuits to
        // EntryAppeared (post-acquire recheck) and holds no lock.
        std::fs::write(&entry, b"present").expect("plant entry");
        assert!(matches!(
            tier.lock_entry(&entry),
            LockOutcome::EntryAppeared
        ));
        assert!(!lock_file.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn waiter_sees_the_entry_appear_under_a_held_lock() {
        let dir = temp_dir("lock-appear");
        let entry = dir.join("entry.rctrace");
        let lock_file = dir.join("entry.rctrace.lock");
        let tier =
            SharedTier::new(Some(dir.clone()), IoPolicy::none()).with_lock_params(fast_locks());

        // Another "process" holds the lock and commits the entry while we
        // wait: the waiter must serve the entry, not steal or expire.
        std::fs::write(&lock_file, b"").expect("foreign lock");
        std::thread::scope(|scope| {
            scope.spawn(|| {
                std::thread::sleep(Duration::from_millis(20));
                std::fs::write(&entry, b"committed").expect("commit entry");
            });
            assert!(matches!(
                tier.lock_entry(&entry),
                LockOutcome::EntryAppeared
            ));
        });
        assert_eq!(tier.health_snapshot().lock_steals, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_lock_is_stolen_fresh_lock_expires_to_unlocked() {
        let dir = temp_dir("lock-stale");
        let entry = dir.join("entry.rctrace");
        let lock_file = dir.join("entry.rctrace.lock");
        let tier =
            SharedTier::new(Some(dir.clone()), IoPolicy::none()).with_lock_params(fast_locks());

        // A crashed writer's lock: backdate its mtime past stale_after.
        let file = std::fs::File::create(&lock_file).expect("plant stale lock");
        file.set_modified(std::time::SystemTime::now() - Duration::from_secs(60))
            .expect("backdate lock");
        drop(file);
        let outcome = tier.lock_entry(&entry);
        assert!(matches!(outcome, LockOutcome::Acquired(_)), "{outcome:?}");
        assert_eq!(tier.health_snapshot().lock_steals, 1);
        drop(outcome);

        // A *fresh* foreign lock with no entry forthcoming: the waiter gives
        // up at the deadline and proceeds unlocked. (Staleness is pushed out
        // of reach so the deadline, not the steal, resolves the wait.)
        let patient = tier.clone().with_lock_params(LockParams {
            stale_after: Duration::from_secs(60),
            poll: Duration::from_millis(5),
            deadline: Duration::from_millis(100),
        });
        std::fs::write(&lock_file, b"").expect("fresh foreign lock");
        let started = Instant::now();
        assert!(matches!(patient.lock_entry(&entry), LockOutcome::Unlocked));
        assert!(started.elapsed() >= Duration::from_millis(100));
        assert_eq!(tier.health_snapshot().lock_steals, 1, "no steal this time");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn future_dated_lock_from_clock_skew_is_stolen() {
        // Regression: a crashed writer can leave a lock whose mtime is in
        // the *future* (clock skew, NTP step). `SystemTime::elapsed()` errors
        // on such a timestamp, and the old code read the error as "fresh" —
        // so the lock could never age past stale_after and every accessor ate
        // the full deadline on every access, forever. A future mtime beyond
        // stale_after must be stolen like any other abandoned lock.
        let dir = temp_dir("lock-future");
        let entry = dir.join("entry.rctrace");
        let lock_file = dir.join("entry.rctrace.lock");
        let tier =
            SharedTier::new(Some(dir.clone()), IoPolicy::none()).with_lock_params(fast_locks());

        let file = std::fs::File::create(&lock_file).expect("plant skewed lock");
        file.set_modified(SystemTime::now() + Duration::from_secs(60))
            .expect("future-date lock");
        drop(file);
        let started = Instant::now();
        let outcome = tier.lock_entry(&entry);
        assert!(matches!(outcome, LockOutcome::Acquired(_)), "{outcome:?}");
        assert_eq!(tier.health_snapshot().lock_steals, 1, "stolen, not waited");
        assert!(
            started.elapsed() < fast_locks().deadline,
            "resolved by stealing, not by deadline expiry"
        );
        drop(outcome);

        // Future skew *within* stale_after is a live writer whose clock runs
        // slightly ahead: its lock must be honored until the deadline, not
        // stolen.
        let patient = tier.clone().with_lock_params(LockParams {
            stale_after: Duration::from_secs(60),
            poll: Duration::from_millis(5),
            deadline: Duration::from_millis(100),
        });
        let file = std::fs::File::create(&lock_file).expect("plant near lock");
        file.set_modified(SystemTime::now() + Duration::from_secs(30))
            .expect("slightly-future lock");
        drop(file);
        assert!(matches!(patient.lock_entry(&entry), LockOutcome::Unlocked));
        assert_eq!(
            tier.health_snapshot().lock_steals,
            1,
            "near-future lock was honored (deadline expiry, no second steal)"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resident_cap_builder_and_env_default() {
        let tier = SharedTier::default();
        assert_eq!(tier.resident_cap(), DEFAULT_RESIDENT_CAP);
        assert_eq!(tier.with_resident_cap(3).resident_cap(), 3);
        assert_eq!(
            SharedTier::default().with_resident_cap(0).resident_cap(),
            1,
            "cap clamps to 1: the trace being served must stay resident"
        );
    }
}
