//! Driver for Figure 6: the hybrid selective-sets-and-ways organization
//! compared against both single organizations across associativities.

use rescache_trace::AppProfile;

use crate::error::CoreError;
use crate::experiment::org_comparison::{organization_vs_associativity, OrgAssocPoint};
use crate::experiment::runner::Runner;
use crate::org::Organization;
use crate::system::ResizableCacheSide;

/// Figure 6: mean energy-delay reduction of selective-ways, selective-sets
/// and the hybrid organization for 2/4/8/16-way 32K L1 caches.
///
/// This is [`organization_vs_associativity`] with all three organizations;
/// the separate entry point exists so the bench for Figure 6 and the
/// hybrid-specific assertions read naturally.
///
/// # Errors
///
/// Propagates configuration-space enumeration failures (none occur for the
/// paper's associativities).
pub fn hybrid_effectiveness(
    runner: &Runner,
    apps: &[AppProfile],
    associativities: &[u32],
    side: ResizableCacheSide,
) -> Result<Vec<OrgAssocPoint>, CoreError> {
    organization_vs_associativity(runner, apps, associativities, &Organization::ALL, side)
}

/// Returns, for every associativity present in `points`, the mean
/// energy-delay reduction of (selective-ways, selective-sets, hybrid).
pub fn by_associativity(points: &[OrgAssocPoint]) -> Vec<(u32, f64, f64, f64)> {
    let mut assocs: Vec<u32> = points.iter().map(|p| p.associativity).collect();
    assocs.sort_unstable();
    assocs.dedup();
    assocs
        .into_iter()
        .map(|assoc| {
            let get = |org: Organization| {
                points
                    .iter()
                    .find(|p| p.associativity == assoc && p.organization == org)
                    .map(|p| p.mean_edp_reduction)
                    .unwrap_or(0.0)
            };
            (
                assoc,
                get(Organization::SelectiveWays),
                get(Organization::SelectiveSets),
                get(Organization::Hybrid),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::runner::RunnerConfig;
    use rescache_trace::spec;

    #[test]
    fn hybrid_is_at_least_as_good_as_either_organization() {
        let runner = Runner::new(RunnerConfig {
            warmup_instructions: 4_000,
            measure_instructions: 12_000,
            trace_seed: 7,
            dynamic_interval: 1_024,
            ..RunnerConfig::fast()
        });
        let apps = vec![spec::ammp(), spec::compress()];
        let points = hybrid_effectiveness(&runner, &apps, &[4], ResizableCacheSide::Data).unwrap();
        let rows = by_associativity(&points);
        assert_eq!(rows.len(), 1);
        let (_, ways, sets, hybrid) = rows[0];
        // The hybrid offers a superset of configurations, so with the same
        // exhaustive static search it can only tie or win (allow a small
        // tolerance for the extra tag-bit energy it pays relative to
        // selective-ways).
        assert!(
            hybrid >= ways - 1.0 && hybrid >= sets - 1.0,
            "hybrid {hybrid:.2}% must not lose to ways {ways:.2}% or sets {sets:.2}%"
        );
    }

    #[test]
    fn by_associativity_groups_points() {
        let points = vec![
            OrgAssocPoint {
                associativity: 2,
                organization: Organization::SelectiveWays,
                side: ResizableCacheSide::Data,
                mean_edp_reduction: 5.0,
                mean_size_reduction: 10.0,
                per_app_edp_reduction: vec![],
            },
            OrgAssocPoint {
                associativity: 2,
                organization: Organization::Hybrid,
                side: ResizableCacheSide::Data,
                mean_edp_reduction: 9.0,
                mean_size_reduction: 20.0,
                per_app_edp_reduction: vec![],
            },
        ];
        let rows = by_associativity(&points);
        assert_eq!(rows, vec![(2, 5.0, 0.0, 9.0)]);
    }
}
