//! Driver for Figure 9: resizing the d-cache alone, the i-cache alone, and
//! both caches simultaneously (the additivity result).

use rescache_trace::AppProfile;

use crate::error::CoreError;
use crate::experiment::parallel::parallel_map;
use crate::experiment::runner::{Measurement, Runner};
use crate::org::{ConfigSpace, Organization};
use crate::system::{ResizableCacheSide, SystemConfig};

/// The three resizing scopes of Figure 9 for one application.
#[derive(Debug, Clone, PartialEq)]
pub struct DualOutcome {
    /// Application name.
    pub app: String,
    /// The non-resizable baseline.
    pub base: Measurement,
    /// Best static d-cache-only configuration.
    pub d_alone: Measurement,
    /// Best static i-cache-only configuration.
    pub i_alone: Measurement,
    /// Both caches resized to their individually profiled best sizes.
    pub both: Measurement,
}

/// One application's bars in Figure 9, expressed as the paper plots them:
/// cache-size reductions are normalised to the *sum* of the two base cache
/// sizes, and energy-delay reductions to the base processor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DualRow {
    /// Index of the application in the input slice.
    pub app_index: usize,
    /// Combined-size reduction from resizing the d-cache alone, in percent.
    pub d_alone_size_reduction: f64,
    /// Combined-size reduction from resizing the i-cache alone, in percent.
    pub i_alone_size_reduction: f64,
    /// Combined-size reduction from resizing both, in percent.
    pub both_size_reduction: f64,
    /// Energy-delay reduction from resizing the d-cache alone, in percent.
    pub d_alone_edp_reduction: f64,
    /// Energy-delay reduction from resizing the i-cache alone, in percent.
    pub i_alone_edp_reduction: f64,
    /// Energy-delay reduction from resizing both, in percent.
    pub both_edp_reduction: f64,
    /// Execution-time increase from resizing both, in percent.
    pub both_slowdown: f64,
}

impl DualRow {
    /// The sum of the two single-cache energy-delay reductions — Figure 9
    /// stacks these next to the combined bar to show additivity.
    pub fn stacked_edp_reduction(&self) -> f64 {
        self.d_alone_edp_reduction + self.i_alone_edp_reduction
    }
}

/// Figure 9: static selective-sets resizing of the d-cache alone, the
/// i-cache alone, and both caches together, on the base out-of-order system.
///
/// # Errors
///
/// Returns an error if the organization cannot be applied to the L1 caches.
pub fn dual_resizing(
    runner: &Runner,
    apps: &[AppProfile],
    system: &SystemConfig,
    organization: Organization,
) -> Result<Vec<(DualOutcome, DualRow)>, CoreError> {
    // Validate applicability once up front so per-app workers can't fail.
    ConfigSpace::enumerate(
        ResizableCacheSide::Data.config_of(&system.hierarchy),
        organization,
    )?;
    ConfigSpace::enumerate(
        ResizableCacheSide::Instruction.config_of(&system.hierarchy),
        organization,
    )?;

    let outcomes: Vec<Result<(DualOutcome, DualRow), CoreError>> =
        parallel_map(apps, |app| evaluate_app(runner, app, system, organization));
    let mut result = Vec::with_capacity(apps.len());
    for (index, outcome) in outcomes.into_iter().enumerate() {
        let (mut outcome, mut row) = outcome?;
        row.app_index = index;
        outcome.app = apps[index].name.to_string();
        result.push((outcome, row));
    }
    Ok(result)
}

fn evaluate_app(
    runner: &Runner,
    app: &AppProfile,
    system: &SystemConfig,
    organization: Organization,
) -> Result<(DualOutcome, DualRow), CoreError> {
    let d_search = runner.static_best(app, system, organization, ResizableCacheSide::Data)?;
    let i_search =
        runner.static_best(app, system, organization, ResizableCacheSide::Instruction)?;
    let base = d_search.base;

    let d_cfg = system.hierarchy.l1d;
    let i_cfg = system.hierarchy.l1i;
    let tag_bits = |cfg: rescache_cache::CacheConfig| {
        if organization.needs_resizing_tag_bits() {
            cfg.resizing_tag_bits()
        } else {
            0
        }
    };

    // Run both caches together at their individually profiled best points
    // (memoized: if either side's best is the full size, this shares the
    // single-side simulation already performed above).
    let both = runner.run_static(
        app,
        system,
        d_search.best.point,
        i_search.best.point,
        tag_bits(d_cfg),
        tag_bits(i_cfg),
    );

    let base_ed = base.energy_delay();
    let combined_full = (d_cfg.size_bytes + i_cfg.size_bytes) as f64;
    let size_reduction =
        |d_bytes: f64, i_bytes: f64| (1.0 - (d_bytes + i_bytes) / combined_full) * 100.0;

    let d_alone = d_search.best.measurement;
    let i_alone = i_search.best.measurement;
    let row = DualRow {
        app_index: 0,
        d_alone_size_reduction: size_reduction(d_alone.l1d_mean_bytes, i_cfg.size_bytes as f64),
        i_alone_size_reduction: size_reduction(d_cfg.size_bytes as f64, i_alone.l1i_mean_bytes),
        both_size_reduction: size_reduction(both.l1d_mean_bytes, both.l1i_mean_bytes),
        d_alone_edp_reduction: d_alone.energy_delay().reduction_vs(&base_ed),
        i_alone_edp_reduction: i_alone.energy_delay().reduction_vs(&base_ed),
        both_edp_reduction: both.energy_delay().reduction_vs(&base_ed),
        both_slowdown: both.energy_delay().slowdown_vs(&base_ed),
    };
    let outcome = DualOutcome {
        app: app.name.to_string(),
        base,
        d_alone,
        i_alone,
        both,
    };
    Ok((outcome, row))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::runner::RunnerConfig;
    use rescache_trace::spec;

    #[test]
    fn dual_resizing_is_roughly_additive_for_small_working_sets() {
        let runner = Runner::new(RunnerConfig {
            warmup_instructions: 4_000,
            measure_instructions: 16_000,
            trace_seed: 7,
            dynamic_interval: 1_024,
            ..RunnerConfig::fast()
        });
        let apps = vec![spec::ammp(), spec::m88ksim()];
        let rows = dual_resizing(
            &runner,
            &apps,
            &SystemConfig::base(),
            Organization::SelectiveSets,
        )
        .unwrap();
        assert_eq!(rows.len(), 2);
        for (outcome, row) in &rows {
            assert!(!outcome.app.is_empty());
            assert!(
                row.both_edp_reduction
                    > row.d_alone_edp_reduction.max(row.i_alone_edp_reduction) - 1.0,
                "{}: resizing both ({:.1}%) should beat either alone ({:.1}% / {:.1}%)",
                outcome.app,
                row.both_edp_reduction,
                row.d_alone_edp_reduction,
                row.i_alone_edp_reduction
            );
            let stacked = row.stacked_edp_reduction();
            assert!(
                (row.both_edp_reduction - stacked).abs() < 7.0,
                "{}: combined saving {:.1}% should be close to the stacked {:.1}%",
                outcome.app,
                row.both_edp_reduction,
                stacked
            );
        }
    }

    #[test]
    fn size_reductions_are_normalised_to_the_combined_capacity() {
        let runner = Runner::new(RunnerConfig {
            warmup_instructions: 2_000,
            measure_instructions: 8_000,
            trace_seed: 7,
            dynamic_interval: 1_024,
            ..RunnerConfig::fast()
        });
        let apps = vec![spec::ammp()];
        let rows = dual_resizing(
            &runner,
            &apps,
            &SystemConfig::base(),
            Organization::SelectiveSets,
        )
        .unwrap();
        let (_, row) = &rows[0];
        // Resizing only one 32K cache of the 64K total can never exceed 50%.
        assert!(row.d_alone_size_reduction <= 50.0);
        assert!(row.i_alone_size_reduction <= 50.0);
        assert!(row.both_size_reduction <= 100.0);
        assert!(row.both_size_reduction >= row.d_alone_size_reduction);
    }
}
