//! A small work-stealing helper used to fan experiment runs out over the
//! available cores (the figure sweeps run thousands of independent
//! simulations).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item, in parallel, preserving the input order of the
/// results.
///
/// The closure runs on `std::thread::available_parallelism()` worker threads
/// (or fewer if there are fewer items); items are handed out through a shared
/// counter, so uneven per-item cost balances naturally.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len());
    if workers <= 1 {
        return items.iter().map(|item| f(item)).collect();
    }

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<R>>> =
        Mutex::new((0..items.len()).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= items.len() {
                    break;
                }
                let value = f(&items[index]);
                results
                    .lock()
                    .expect("result mutex is never poisoned: workers do not panic while holding it")
                    [index] = Some(value);
            });
        }
    });

    results
        .into_inner()
        .expect("all workers have finished")
        .into_iter()
        .map(|slot| slot.expect("every index was processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_empty_output() {
        let items: Vec<u64> = vec![];
        assert!(parallel_map(&items, |x| *x).is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        assert_eq!(parallel_map(&[7u64], |x| x + 1), vec![8]);
    }

    #[test]
    fn handles_non_trivial_work() {
        let items: Vec<u64> = (0..32).collect();
        let out = parallel_map(&items, |x| (0..=*x).sum::<u64>());
        assert_eq!(out[31], 496);
    }
}
