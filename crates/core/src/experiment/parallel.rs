//! A small work-stealing helper used to fan experiment runs out over the
//! available cores (the figure sweeps run thousands of independent
//! simulations).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Upper bound on the resolved worker count: `RESCACHE_THREADS` values above
/// this clamp down to it. Spawning thousands of scoped threads only adds
/// scheduler pressure — `parallel_map` additionally never uses more workers
/// than it has items.
const MAX_WORKERS: usize = 512;

/// Resolves the worker count from a raw `RESCACHE_THREADS` value and the
/// host parallelism. Deterministic fallback rules, in order:
///
/// * unset → `host`;
/// * a positive integer → that value, clamped to [`MAX_WORKERS`];
/// * anything else (`0`, empty, non-numeric, overflowing) → `host`, exactly
///   as if the variable were unset.
///
/// `host` itself is clamped to `1..=MAX_WORKERS` so the result is always a
/// usable thread count.
fn resolve_workers(raw: Option<&str>, host: usize) -> usize {
    let fallback = host.clamp(1, MAX_WORKERS);
    match raw {
        None => fallback,
        Some(value) => match value.trim().parse::<usize>() {
            Ok(n) if n > 0 => n.min(MAX_WORKERS),
            _ => fallback,
        },
    }
}

/// The number of worker threads `parallel_map` fans out over: the
/// `RESCACHE_THREADS` environment variable if set to a positive integer
/// (clamped to 512), otherwise `std::thread::available_parallelism()`.
/// Invalid values — `0`, empty, or unparsable — fall back to the host
/// parallelism exactly as if the variable were unset (see `resolve_workers`
/// for the precedence), with a one-time warning on stderr.
///
/// The override serves two audiences: scaling studies (pin the worker count
/// and measure, instead of inheriting whatever the host offers) and shared
/// CI/build boxes (cap the fan-out below the machine width). The value is
/// resolved and recorded **once per process** — the environment is read on
/// first call only, every later call returns the same value — and written to
/// `BENCH_sim_throughput.json` so every trajectory entry names the
/// parallelism it was measured at. Callers that fan out over fewer items
/// than workers use fewer threads (`parallel_map` caps at the item count).
pub fn effective_workers() -> usize {
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        let raw = std::env::var("RESCACHE_THREADS").ok();
        let host = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let resolved = resolve_workers(raw.as_deref(), host);
        if let Some(value) = raw {
            if !matches!(value.trim().parse::<usize>(), Ok(n) if n > 0) {
                eprintln!(
                    "RESCACHE_THREADS={value:?} is not a positive integer; \
                     falling back to host parallelism ({resolved})"
                );
            }
        }
        resolved
    })
}

/// Applies `f` to every item, in parallel, preserving the input order of the
/// results.
///
/// The closure runs on [`effective_workers`] worker threads (or fewer if
/// there are fewer items); items are handed out through a shared counter, so
/// uneven per-item cost balances naturally.
///
/// Result storage is lock-free: each worker accumulates `(index, value)`
/// pairs in a local buffer and the buffers are merged when the workers are
/// joined. The previous implementation funnelled every result through one
/// `Mutex<Vec<Option<R>>>`, which serialized the workers of wide sweeps on
/// result storage; with per-worker buffers the only shared write is the
/// atomic item counter.
///
/// Calls nest safely (the figure drivers parallelize over applications while
/// the runner parallelizes over configuration points): each call owns its
/// worker scope, and a nested call simply adds threads that the OS scheduler
/// multiplexes over the same cores.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = effective_workers().min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= items.len() {
                            break;
                        }
                        local.push((index, f(&items[index])));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            let local = handle
                .join()
                .expect("parallel_map workers do not panic: the closure is required not to");
            for (index, value) in local {
                results[index] = Some(value);
            }
        }
    });

    results
        .into_iter()
        .map(|slot| slot.expect("every index was processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_empty_output() {
        let items: Vec<u64> = vec![];
        assert!(parallel_map(&items, |x| *x).is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        assert_eq!(parallel_map(&[7u64], |x| x + 1), vec![8]);
    }

    #[test]
    fn handles_non_trivial_work() {
        let items: Vec<u64> = (0..32).collect();
        let out = parallel_map(&items, |x| (0..=*x).sum::<u64>());
        assert_eq!(out[31], 496);
    }

    #[test]
    fn effective_workers_is_positive_and_stable() {
        // The value is computed once per process; with RESCACHE_THREADS unset
        // in the test environment it falls back to the host parallelism.
        let first = effective_workers();
        assert!(first >= 1);
        assert_eq!(effective_workers(), first);
    }

    #[test]
    fn resolve_workers_accepts_positive_integers() {
        assert_eq!(resolve_workers(Some("3"), 8), 3);
        assert_eq!(resolve_workers(Some(" 16 "), 8), 16, "whitespace trimmed");
        assert_eq!(resolve_workers(Some("1"), 8), 1);
    }

    #[test]
    fn resolve_workers_falls_back_deterministically_on_invalid_values() {
        // Zero, empty, garbage, negative and overflowing values all behave
        // exactly as if the variable were unset.
        for raw in [
            None,
            Some("0"),
            Some(""),
            Some("abc"),
            Some("-2"),
            Some("1e3"),
        ] {
            assert_eq!(resolve_workers(raw, 8), 8, "raw {raw:?}");
        }
        assert_eq!(
            resolve_workers(Some("18446744073709551616"), 4),
            4,
            "overflow falls back to host"
        );
    }

    #[test]
    fn resolve_workers_clamps_oversized_requests_and_hosts() {
        assert_eq!(resolve_workers(Some("1000000"), 8), MAX_WORKERS);
        assert_eq!(resolve_workers(None, 100_000), MAX_WORKERS);
        assert_eq!(resolve_workers(None, 0), 1, "degenerate host clamps up");
    }

    #[test]
    fn workers_beyond_item_count_are_harmless() {
        // `parallel_map` caps the fan-out at the item count, so a worker
        // request far above it still computes every item exactly once.
        let items: Vec<u64> = (0..3).collect();
        let out = parallel_map(&items, |x| x + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn nested_calls_complete() {
        let outer: Vec<u64> = (0..8).collect();
        let out = parallel_map(&outer, |x| {
            let inner: Vec<u64> = (0..4).collect();
            parallel_map(&inner, |y| x * 10 + y)
                .into_iter()
                .sum::<u64>()
        });
        assert_eq!(out[1], 10 + 11 + 12 + 13);
        assert_eq!(out.len(), 8);
    }
}
