//! The simulated system: processor configuration plus memory hierarchy, and
//! which L1 cache(s) an experiment resizes.

use rescache_cache::{CacheConfig, HierarchyConfig, ReplacementPolicy};
use rescache_cpu::CpuConfig;

/// Which L1 cache a resizing organization/strategy is applied to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResizableCacheSide {
    /// Resize the L1 data cache.
    Data,
    /// Resize the L1 instruction cache.
    Instruction,
}

impl ResizableCacheSide {
    /// Both sides, d-cache first (the order the paper's figures use).
    pub const ALL: [ResizableCacheSide; 2] =
        [ResizableCacheSide::Data, ResizableCacheSide::Instruction];

    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            ResizableCacheSide::Data => "d-cache",
            ResizableCacheSide::Instruction => "i-cache",
        }
    }

    /// The cache configuration of this side within a hierarchy configuration.
    pub fn config_of(&self, hierarchy: &HierarchyConfig) -> CacheConfig {
        match self {
            ResizableCacheSide::Data => hierarchy.l1d,
            ResizableCacheSide::Instruction => hierarchy.l1i,
        }
    }
}

impl std::fmt::Display for ResizableCacheSide {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A complete simulated system: processor plus memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SystemConfig {
    /// The processor configuration.
    pub cpu: CpuConfig,
    /// The memory hierarchy configuration.
    pub hierarchy: HierarchyConfig,
}

impl SystemConfig {
    /// The paper's base system (Table 2): four-way out-of-order issue,
    /// non-blocking 32K 2-way L1s, 512K 4-way L2.
    pub fn base() -> Self {
        Self {
            cpu: CpuConfig::base_out_of_order(),
            hierarchy: HierarchyConfig::base(),
        }
    }

    /// The paper's alternative processor: in-order issue with a blocking
    /// d-cache, same memory hierarchy.
    pub fn in_order() -> Self {
        Self {
            cpu: CpuConfig::base_in_order(),
            hierarchy: HierarchyConfig::base(),
        }
    }

    /// The base system with both L1s set to `size_bytes` and `associativity`
    /// (used by the associativity sweeps of Figures 4 and 6).
    pub fn with_l1(size_bytes: u64, associativity: u32) -> Self {
        Self {
            cpu: CpuConfig::base_out_of_order(),
            hierarchy: HierarchyConfig::with_l1(size_bytes, associativity),
        }
    }

    /// Returns a copy with the in-order/blocking processor.
    pub fn into_in_order(mut self) -> Self {
        self.cpu = CpuConfig::base_in_order();
        self
    }

    /// This system with the d-cache replacement policy `RESCACHE_POLICY`
    /// names (LRU — the paper's baseline, and a no-op — when unset). The
    /// policy is part of the hierarchy configuration and hence of every
    /// memo key, so runs under different policies never cross-serve. The
    /// figure benches deliberately do *not* apply this: the paper's
    /// figures are defined over LRU.
    pub fn with_env_policy(mut self) -> Self {
        self.hierarchy.l1d_policy = ReplacementPolicy::from_env();
        self
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::base()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescache_cpu::EngineKind;

    #[test]
    fn base_matches_table_2() {
        let s = SystemConfig::base();
        assert_eq!(s.cpu.issue_width, 4);
        assert_eq!(s.hierarchy.l1d.size_bytes, 32 * 1024);
        assert_eq!(s.hierarchy.l1d.associativity, 2);
        assert_eq!(s.hierarchy.l2.size_bytes, 512 * 1024);
        assert_eq!(s.cpu.engine, EngineKind::OutOfOrderNonBlocking);
    }

    #[test]
    fn in_order_variant() {
        assert_eq!(
            SystemConfig::in_order().cpu.engine,
            EngineKind::InOrderBlocking
        );
        assert_eq!(
            SystemConfig::base().into_in_order().cpu.engine,
            EngineKind::InOrderBlocking
        );
    }

    #[test]
    fn with_l1_changes_both_l1s() {
        let s = SystemConfig::with_l1(32 * 1024, 8);
        assert_eq!(s.hierarchy.l1i.associativity, 8);
        assert_eq!(s.hierarchy.l1d.associativity, 8);
    }

    #[test]
    fn side_accessors() {
        let s = SystemConfig::base();
        assert_eq!(
            ResizableCacheSide::Data.config_of(&s.hierarchy),
            s.hierarchy.l1d
        );
        assert_eq!(
            ResizableCacheSide::Instruction.config_of(&s.hierarchy),
            s.hierarchy.l1i
        );
        assert_eq!(ResizableCacheSide::Data.label(), "d-cache");
        assert_eq!(format!("{}", ResizableCacheSide::Instruction), "i-cache");
        assert_eq!(ResizableCacheSide::ALL.len(), 2);
    }
}
