//! Error types for the core crate.

use std::error::Error;
use std::fmt;

use rescache_cache::CacheConfigError;

/// Errors produced while setting up organizations, strategies or experiments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The underlying cache configuration was rejected.
    Cache(CacheConfigError),
    /// A resizing organization cannot be applied to the given cache
    /// configuration (e.g. selective-sets on a cache with a single subarray
    /// per way).
    Inapplicable {
        /// Explanation of the mismatch.
        detail: String,
    },
    /// A strategy parameter was out of range.
    InvalidParameter {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Explanation of the violation.
        detail: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Cache(e) => write!(f, "invalid cache configuration: {e}"),
            CoreError::Inapplicable { detail } => {
                write!(f, "organization not applicable: {detail}")
            }
            CoreError::InvalidParameter { parameter, detail } => {
                write!(f, "invalid {parameter}: {detail}")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Cache(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CacheConfigError> for CoreError {
    fn from(e: CacheConfigError) -> Self {
        CoreError::Cache(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = CoreError::Inapplicable {
            detail: "fully associative".into(),
        };
        assert!(e.to_string().contains("not applicable"));
        let e = CoreError::InvalidParameter {
            parameter: "interval",
            detail: "must be positive".into(),
        };
        assert!(e.to_string().contains("interval"));
    }

    #[test]
    fn wraps_cache_errors() {
        let cache_err = CacheConfigError::NotPowerOfTwo {
            field: "size_bytes",
            value: 3,
        };
        let e: CoreError = cache_err.clone().into();
        assert_eq!(e, CoreError::Cache(cache_err));
        assert!(Error::source(&e).is_some());
    }
}
