//! A hand-rolled minimal JSON value, parser and writer for the sweep
//! service's line protocol.
//!
//! The workspace builds offline and deliberately carries no external
//! dependencies, so the request server cannot lean on serde. This module
//! implements exactly the JSON subset the JSON-lines protocol needs — objects,
//! arrays, strings (with escapes), f64 numbers, booleans, null — with two
//! properties the server requires and serde would also give us:
//!
//! * **total**: every possible input byte sequence produces either a value or
//!   a typed [`JsonError`]; nothing panics, nothing recurses unboundedly
//!   (depth is capped at [`MAX_DEPTH`]);
//! * **round-trip**: [`Json::render`] emits a line [`Json::parse`] accepts,
//!   so responses are built from the same type requests parse into.
//!
//! Numbers are stored as `f64`. That makes integers above 2^53
//! unrepresentable exactly — fine for this protocol, whose counters (cycles,
//! instructions, request ids) sit far below that, and a deliberate
//! simplification over a full number tower.

use std::fmt;

/// Maximum nesting depth [`Json::parse`] accepts. Requests in the sweep
/// protocol are at most two levels deep; 32 leaves headroom while keeping
/// the recursive-descent parser safe from stack exhaustion on adversarial
/// input like `[[[[...`.
pub const MAX_DEPTH: usize = 32;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; see the module docs).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as insertion-ordered key/value pairs (duplicate keys are
    /// kept; [`Json::get`] returns the first).
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset into the input plus a static description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset at which parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON value from `input`, requiring that nothing but
    /// whitespace follows it.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(value)
    }

    /// The value under `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as a non-negative integer, if this is a number
    /// holding one exactly (rejects negatives, fractions and magnitudes
    /// beyond 2^53, where `f64` stops being exact).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&n) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders this value as a single-line JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => render_number(*n, out),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// A non-finite number has no JSON representation; `null` is the standard
/// lossy stand-in (serde_json does the same).
fn render_number(n: f64, out: &mut String) {
    use fmt::Write;
    if n.is_finite() {
        // `{}` on f64 prints the shortest string that parses back exactly.
        let _ = write!(out, "{n}");
    } else {
        out.push_str("null");
    }
}

fn render_string(s: &str, out: &mut String) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xc0) == 0x80 {
                        self.pos += 1;
                    }
                    if let Ok(s) = std::str::from_utf8(&self.bytes[start..self.pos]) {
                        out.push_str(s);
                    }
                }
            }
        }
    }

    /// Parses the four hex digits after `\u` (the `u` already consumed),
    /// combining surrogate pairs. Leaves `pos` one past the last digit
    /// consumed.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let unit = self.hex4()?;
        if (0xd800..0xdc00).contains(&unit) {
            // High surrogate: a \uXXXX low surrogate must follow.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let low = self.hex4()?;
                if (0xdc00..0xe000).contains(&low) {
                    let c = 0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00);
                    return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(unit).ok_or_else(|| self.err("invalid unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("invalid \\u escape")),
            };
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => Err(self.err("invalid number")),
        }
    }
}

/// Convenience: an object from key/value pairs (the shape every protocol
/// response uses).
pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse(" 42 ").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(
            Json::parse("\"hi\\n\\u0041\"").unwrap(),
            Json::Str("hi\nA".into())
        );
    }

    #[test]
    fn parses_nested_structures_and_accessors() {
        let v = Json::parse(r#"{"req":"point","id":7,"pts":[{"sets":64,"ways":2}],"on":true}"#)
            .unwrap();
        assert_eq!(v.get("req").and_then(Json::as_str), Some("point"));
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("on").and_then(Json::as_bool), Some(true));
        let pts = v.get("pts").and_then(Json::as_arr).unwrap();
        assert_eq!(pts[0].get("sets").and_then(Json::as_u64), Some(64));
        assert!(v.get("missing").is_none());
        assert!(v.get("id").unwrap().as_str().is_none());
    }

    #[test]
    fn round_trips_through_render() {
        let cases = [
            r#"{"a":1,"b":[true,null,"x\"y\\z"],"c":{"d":-2.5}}"#,
            r#"[]"#,
            r#"{}"#,
            r#"{"s":"tab\there \u00e9"}"#,
        ];
        for case in cases {
            let parsed = Json::parse(case).unwrap();
            let rendered = parsed.render();
            assert_eq!(Json::parse(&rendered).unwrap(), parsed, "{case}");
        }
    }

    #[test]
    fn surrogate_pairs_round_trip() {
        let v = Json::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v, Json::Str("😀".into()));
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
        assert!(Json::parse(r#""\ud83d""#).is_err(), "unpaired surrogate");
    }

    #[test]
    fn malformed_inputs_are_typed_errors_never_panics() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "{'a':1}",
            "\"unterminated",
            "01x",
            "nul",
            "truefalse",
            "1 2",
            "\"\\q\"",
            "\"\\u12g4\"",
            "-",
            "\u{1}",
            "{\"a\":1,}",
        ] {
            let err = Json::parse(bad).expect_err(bad);
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert_eq!(
            Json::parse(&deep).unwrap_err().msg,
            "nesting too deep",
            "adversarial nesting is rejected, not recursed into"
        );
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn u64_accessor_rejects_inexact_values() {
        assert_eq!(Json::Num(3.0).as_u64(), Some(3));
        assert_eq!(Json::Num(3.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1e300).as_u64(), None);
    }

    #[test]
    fn obj_builder_and_number_rendering() {
        let v = obj([("a", Json::Num(1.0)), ("b", Json::Str("x".into()))]);
        assert_eq!(v.render(), r#"{"a":1,"b":"x"}"#);
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(0.1).render(), "0.1");
        // Control characters render as escapes that parse back.
        let s = Json::Str("\u{0007}".into());
        assert_eq!(Json::parse(&s.render()).unwrap(), s);
    }
}
