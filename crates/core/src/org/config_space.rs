//! The set of cache configurations an organization offers for a given base
//! cache.

use rescache_cache::CacheConfig;

use crate::error::CoreError;
use crate::org::{CachePoint, Organization};

/// The ordered (largest to smallest) list of configurations an organization
/// offers for one base cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigSpace {
    config: CacheConfig,
    organization: Organization,
    points: Vec<CachePoint>,
}

impl ConfigSpace {
    /// Enumerates the configurations `organization` offers for `config`.
    ///
    /// * Selective-ways offers every way count from the full associativity
    ///   down to one way, at the full set count.
    /// * Selective-sets offers every power-of-two set count from the full
    ///   number of sets down to one subarray per way, at full associativity.
    /// * Hybrid offers the cross product of the two, with redundant sizes
    ///   collapsed onto the highest-associativity point (the paper's Table 1
    ///   rule: "the hybrid cache offers the highest set-associativity to
    ///   minimize miss ratio").
    ///
    /// Points are sorted by decreasing capacity; the first point is always
    /// the full-size cache.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Cache`] if the base configuration is invalid, or
    /// [`CoreError::Inapplicable`] if the organization cannot offer any size
    /// other than the full cache (e.g. selective-ways on a direct-mapped
    /// cache).
    pub fn enumerate(config: CacheConfig, organization: Organization) -> Result<Self, CoreError> {
        config.validate()?;
        let full_sets = config.num_sets();
        let min_sets = config.min_sets();
        let assoc = config.associativity;

        let mut points: Vec<CachePoint> = Vec::new();
        match organization {
            Organization::SelectiveWays => {
                for ways in (1..=assoc).rev() {
                    points.push(CachePoint {
                        sets: full_sets,
                        ways,
                    });
                }
            }
            Organization::SelectiveSets => {
                let mut sets = full_sets;
                while sets >= min_sets {
                    points.push(CachePoint { sets, ways: assoc });
                    if sets == min_sets {
                        break;
                    }
                    sets /= 2;
                }
            }
            Organization::Hybrid => {
                let mut sets = full_sets;
                loop {
                    for ways in (1..=assoc).rev() {
                        points.push(CachePoint { sets, ways });
                    }
                    if sets == min_sets {
                        break;
                    }
                    sets /= 2;
                }
            }
        }

        let block = config.block_bytes;
        // Sort by decreasing size; among equal sizes keep the highest
        // associativity first, then drop the redundant smaller-associativity
        // duplicates.
        points.sort_by(|a, b| {
            b.bytes(block)
                .cmp(&a.bytes(block))
                .then(b.ways.cmp(&a.ways))
        });
        points.dedup_by_key(|p| p.bytes(block));

        if points.len() < 2 {
            return Err(CoreError::Inapplicable {
                detail: format!(
                    "{organization} offers no size other than the full cache for {}K {}-way",
                    config.size_bytes / 1024,
                    assoc
                ),
            });
        }
        Ok(Self {
            config,
            organization,
            points,
        })
    }

    /// The base cache configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The organization that produced this space.
    pub fn organization(&self) -> Organization {
        self.organization
    }

    /// The offered points, largest first.
    pub fn points(&self) -> &[CachePoint] {
        &self.points
    }

    /// Number of offered points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `false`: a config space always offers at least two points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The offered capacities in bytes, largest first.
    pub fn sizes_bytes(&self) -> Vec<u64> {
        self.points
            .iter()
            .map(|p| p.bytes(self.config.block_bytes))
            .collect()
    }

    /// The index of the full-size point (always 0).
    pub fn full_index(&self) -> usize {
        0
    }

    /// The smallest offered capacity in bytes.
    pub fn min_bytes(&self) -> u64 {
        *self.sizes_bytes().last().expect("non-empty space")
    }

    /// Snaps a requested size-bound to the capacity the controller would
    /// actually be floored at: the smallest offered capacity that is at
    /// least `bytes`, with bounds beyond the full size clamped to the full
    /// size.
    ///
    /// Sweeping un-snapped bounds silently wastes simulations — two bounds
    /// that fall between the same pair of offered sizes behave identically —
    /// and a bound above the full capacity would be rejected outright by
    /// [`crate::strategy::DynamicController::new`]; snapping makes both
    /// cases explicit (see `DynamicParams::candidates_for_space`).
    pub fn snap_size_bound(&self, bytes: u64) -> u64 {
        self.sizes_bytes()[self.index_of_at_least(bytes)]
    }

    /// Index of the smallest offered point whose capacity is at least
    /// `bytes` (used to translate a size-bound into a point index).
    pub fn index_of_at_least(&self, bytes: u64) -> usize {
        let sizes = self.sizes_bytes();
        let mut idx = 0;
        for (i, size) in sizes.iter().enumerate() {
            if *size >= bytes {
                idx = i;
            } else {
                break;
            }
        }
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space(size_kib: u64, assoc: u32, org: Organization) -> ConfigSpace {
        ConfigSpace::enumerate(CacheConfig::l1_default(size_kib * 1024, assoc), org).unwrap()
    }

    #[test]
    fn selective_ways_4way_offers_paper_sizes() {
        let s = space(32, 4, Organization::SelectiveWays);
        let sizes_kib: Vec<u64> = s.sizes_bytes().iter().map(|b| b / 1024).collect();
        assert_eq!(sizes_kib, vec![32, 24, 16, 8]);
    }

    #[test]
    fn selective_sets_4way_offers_paper_sizes() {
        let s = space(32, 4, Organization::SelectiveSets);
        let sizes_kib: Vec<u64> = s.sizes_bytes().iter().map(|b| b / 1024).collect();
        assert_eq!(sizes_kib, vec![32, 16, 8, 4]);
        assert!(
            s.points().iter().all(|p| p.ways == 4),
            "associativity preserved"
        );
    }

    #[test]
    fn selective_sets_2way_reaches_2k() {
        let s = space(32, 2, Organization::SelectiveSets);
        let sizes_kib: Vec<u64> = s.sizes_bytes().iter().map(|b| b / 1024).collect();
        assert_eq!(sizes_kib, vec![32, 16, 8, 4, 2]);
    }

    #[test]
    fn selective_ways_2way_is_coarse() {
        let s = space(32, 2, Organization::SelectiveWays);
        let sizes_kib: Vec<u64> = s.sizes_bytes().iter().map(|b| b / 1024).collect();
        assert_eq!(sizes_kib, vec![32, 16]);
    }

    #[test]
    fn hybrid_4way_matches_table_1() {
        let s = space(32, 4, Organization::Hybrid);
        let sizes_kib: Vec<u64> = s.sizes_bytes().iter().map(|b| b / 1024).collect();
        assert_eq!(sizes_kib, vec![32, 24, 16, 12, 8, 6, 4, 3, 2, 1]);
        // Redundant 16K point keeps the highest associativity (4-way, not 2-way).
        let sixteen = s
            .points()
            .iter()
            .find(|p| p.bytes(32) == 16 * 1024)
            .unwrap();
        assert_eq!(sixteen.ways, 4);
        // The 24K point is the 3-way configuration.
        let twenty_four = s
            .points()
            .iter()
            .find(|p| p.bytes(32) == 24 * 1024)
            .unwrap();
        assert_eq!(twenty_four.ways, 3);
    }

    #[test]
    fn hybrid_is_superset_of_both_organizations() {
        for assoc in [2u32, 4, 8, 16] {
            let hybrid = space(32, assoc, Organization::Hybrid);
            let hybrid_sizes = hybrid.sizes_bytes();
            for org in [Organization::SelectiveWays, Organization::SelectiveSets] {
                let other = space(32, assoc, org);
                for size in other.sizes_bytes() {
                    assert!(
                        hybrid_sizes.contains(&size),
                        "hybrid must offer every size {org} offers ({size} bytes, {assoc}-way)"
                    );
                }
            }
        }
    }

    #[test]
    fn selective_ways_16way_is_fine_grained() {
        let s = space(32, 16, Organization::SelectiveWays);
        assert_eq!(s.len(), 16);
        assert_eq!(s.min_bytes(), 2 * 1024);
    }

    #[test]
    fn selective_sets_16way_is_coarse() {
        let s = space(32, 16, Organization::SelectiveSets);
        let sizes_kib: Vec<u64> = s.sizes_bytes().iter().map(|b| b / 1024).collect();
        assert_eq!(sizes_kib, vec![32, 16]);
    }

    #[test]
    fn direct_mapped_selective_ways_is_inapplicable() {
        let err = ConfigSpace::enumerate(
            CacheConfig::l1_default(32 * 1024, 1),
            Organization::SelectiveWays,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::Inapplicable { .. }));
    }

    #[test]
    fn first_point_is_full_size() {
        for org in Organization::ALL {
            let s = space(32, 4, org);
            assert_eq!(s.points()[s.full_index()], CachePoint::full(s.config()));
            assert!(!s.is_empty());
        }
    }

    #[test]
    fn index_of_at_least_translates_size_bounds() {
        let s = space(32, 4, Organization::SelectiveSets); // 32, 16, 8, 4 KiB
        assert_eq!(s.index_of_at_least(32 * 1024), 0);
        assert_eq!(s.index_of_at_least(16 * 1024), 1);
        assert_eq!(s.index_of_at_least(5 * 1024), 2, "8K is the smallest >= 5K");
        assert_eq!(s.index_of_at_least(1024), 3);
    }

    #[test]
    fn snap_size_bound_lands_on_offered_capacities() {
        let s = space(32, 4, Organization::SelectiveSets); // 32, 16, 8, 4 KiB
        assert_eq!(s.snap_size_bound(16 * 1024), 16 * 1024, "offered: exact");
        assert_eq!(s.snap_size_bound(5 * 1024), 8 * 1024, "between: rounds up");
        assert_eq!(s.snap_size_bound(1), 4 * 1024, "below: smallest offered");
        assert_eq!(
            s.snap_size_bound(64 * 1024),
            32 * 1024,
            "beyond full: clamped to the full size"
        );
    }

    #[test]
    fn invalid_config_is_rejected() {
        let err = ConfigSpace::enumerate(
            CacheConfig::l1_default(33 * 1024, 2),
            Organization::SelectiveSets,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::Cache(_)));
    }
}
