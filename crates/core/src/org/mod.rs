//! Resizable cache organizations and the configuration points they offer.

pub mod config_space;
pub mod table1;

pub use config_space::ConfigSpace;
pub use table1::{hybrid_grid, HybridGrid};

use rescache_cache::{Cache, CacheConfig, ResizeEffect};

/// Which cache dimension(s) an organization may resize.
///
/// The three organizations of the paper:
///
/// * `SelectiveWays` (Albonesi): a way-mask disables individual ways, so the
///   offered sizes are multiples of the way size and associativity shrinks
///   with the cache. Cheap to build (no extra tag bits, no flush of surviving
///   blocks) but unusable or coarse for low-associativity caches.
/// * `SelectiveSets` (Yang et al.): a set-mask disables power-of-two groups
///   of sets, preserving associativity but requiring the tag array of the
///   smallest size and flushes when mappings change.
/// * `Hybrid` (this paper's proposal): both masks, offering the union of the
///   two size spectra (Table 1) and always at least matching the better of
///   the other two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Organization {
    /// Resize by masking associative ways.
    SelectiveWays,
    /// Resize by masking sets (power-of-two), keeping associativity.
    SelectiveSets,
    /// Resize by masking both sets and ways.
    Hybrid,
}

impl Organization {
    /// All three organizations, in the order the paper's figures use.
    pub const ALL: [Organization; 3] = [
        Organization::SelectiveWays,
        Organization::SelectiveSets,
        Organization::Hybrid,
    ];

    /// Short label used in tables and reports.
    pub fn label(&self) -> &'static str {
        match self {
            Organization::SelectiveWays => "selective-ways",
            Organization::SelectiveSets => "selective-sets",
            Organization::Hybrid => "hybrid",
        }
    }

    /// Whether this organization needs the enlarged ("resizing") tag array:
    /// anything that changes the number of sets does.
    pub fn needs_resizing_tag_bits(&self) -> bool {
        matches!(self, Organization::SelectiveSets | Organization::Hybrid)
    }
}

impl std::fmt::Display for Organization {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One resized cache configuration: a number of enabled sets and ways.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CachePoint {
    /// Enabled sets.
    pub sets: u64,
    /// Enabled ways.
    pub ways: u32,
}

impl CachePoint {
    /// The full-size point of a cache configuration.
    pub fn full(config: &CacheConfig) -> Self {
        Self {
            sets: config.num_sets(),
            ways: config.associativity,
        }
    }

    /// Enabled capacity in bytes for the given block size.
    pub fn bytes(&self, block_bytes: u64) -> u64 {
        self.sets * u64::from(self.ways) * block_bytes
    }

    /// Applies this point to a cache, returning the flush effect.
    pub fn apply(&self, cache: &mut Cache) -> ResizeEffect {
        cache.resize(self.sets, self.ways)
    }
}

impl std::fmt::Display for CachePoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} sets x {} ways", self.sets, self.ways)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescache_cache::CacheConfig;

    #[test]
    fn labels_and_display() {
        assert_eq!(Organization::SelectiveWays.label(), "selective-ways");
        assert_eq!(format!("{}", Organization::Hybrid), "hybrid");
        assert_eq!(Organization::ALL.len(), 3);
    }

    #[test]
    fn tag_overhead_only_for_set_changing_orgs() {
        assert!(!Organization::SelectiveWays.needs_resizing_tag_bits());
        assert!(Organization::SelectiveSets.needs_resizing_tag_bits());
        assert!(Organization::Hybrid.needs_resizing_tag_bits());
    }

    #[test]
    fn point_bytes_and_apply() {
        let config = CacheConfig::l1_default(32 * 1024, 4);
        let full = CachePoint::full(&config);
        assert_eq!(full.bytes(config.block_bytes), 32 * 1024);
        let mut cache = Cache::new(config).unwrap();
        let point = CachePoint { sets: 128, ways: 3 };
        point.apply(&mut cache);
        assert_eq!(cache.enabled_bytes(), 12 * 1024);
        assert_eq!(format!("{point}"), "128 sets x 3 ways");
    }
}
