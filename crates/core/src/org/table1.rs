//! The paper's Table 1: the size/associativity grid a hybrid cache offers.

use rescache_cache::CacheConfig;

use crate::error::CoreError;
use crate::org::{CachePoint, ConfigSpace, Organization};

/// The hybrid size grid: one row per way size (number of enabled sets), one
/// column per associativity, each cell the resulting capacity in bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HybridGrid {
    /// Way sizes (bytes per way) for each row, largest first.
    pub way_bytes: Vec<u64>,
    /// Associativities for each column, largest first.
    pub associativities: Vec<u32>,
    /// `cells[row][col]` = capacity in bytes at that way size and
    /// associativity.
    pub cells: Vec<Vec<u64>>,
    /// `redundant[row][col]` = true when the same capacity is offered by a
    /// higher-associativity cell (the grey cells of Table 1).
    pub redundant: Vec<Vec<bool>>,
}

impl HybridGrid {
    /// Renders the grid as a plain-text table (sizes in KiB), matching the
    /// layout of the paper's Table 1.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("way size |");
        for a in &self.associativities {
            out.push_str(&format!(" {a:>3}-way |"));
        }
        out.push('\n');
        for (r, way) in self.way_bytes.iter().enumerate() {
            out.push_str(&format!("{:>6}K  |", way / 1024));
            for (c, _) in self.associativities.iter().enumerate() {
                let kib = self.cells[r][c] / 1024;
                let marker = if self.redundant[r][c] { "*" } else { " " };
                out.push_str(&format!(" {kib:>4}K{marker} |"));
            }
            out.push('\n');
        }
        out.push_str("(* = redundant size, offered at a higher associativity)\n");
        out
    }
}

/// Builds the hybrid resizing grid (Table 1) for a cache configuration.
///
/// # Errors
///
/// Returns an error if the configuration is invalid or the hybrid
/// organization is inapplicable to it.
pub fn hybrid_grid(config: CacheConfig) -> Result<HybridGrid, CoreError> {
    // Validate applicability the same way the config space does.
    let space = ConfigSpace::enumerate(config, Organization::Hybrid)?;
    let offered = space.points().to_vec();

    let mut way_bytes = Vec::new();
    let mut sets = config.num_sets();
    loop {
        way_bytes.push(sets * config.block_bytes);
        if sets == config.min_sets() {
            break;
        }
        sets /= 2;
    }
    let associativities: Vec<u32> = (1..=config.associativity).rev().collect();

    let mut cells = Vec::new();
    let mut redundant = Vec::new();
    for way in &way_bytes {
        let mut row = Vec::new();
        let mut red_row = Vec::new();
        for assoc in &associativities {
            let bytes = way * u64::from(*assoc);
            row.push(bytes);
            // A cell is redundant when the de-duplicated offered list realises
            // this capacity at a different (higher) associativity or with a
            // different set count.
            let offered_point = offered
                .iter()
                .find(|p| p.bytes(config.block_bytes) == bytes)
                .copied()
                .unwrap_or(CachePoint {
                    sets: way / config.block_bytes,
                    ways: *assoc,
                });
            red_row.push(
                offered_point.ways != *assoc || offered_point.sets != way / config.block_bytes,
            );
        }
        cells.push(row);
        redundant.push(red_row);
    }

    Ok(HybridGrid {
        way_bytes,
        associativities,
        cells,
        redundant,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_matches_paper_table_1() {
        let grid = hybrid_grid(CacheConfig::l1_default(32 * 1024, 4)).unwrap();
        assert_eq!(grid.way_bytes, vec![8192, 4096, 2048, 1024]);
        assert_eq!(grid.associativities, vec![4, 3, 2, 1]);
        let kib: Vec<Vec<u64>> = grid
            .cells
            .iter()
            .map(|row| row.iter().map(|b| b / 1024).collect())
            .collect();
        assert_eq!(
            kib,
            vec![
                vec![32, 24, 16, 8],
                vec![16, 12, 8, 4],
                vec![8, 6, 4, 2],
                vec![4, 3, 2, 1],
            ]
        );
    }

    #[test]
    fn redundant_cells_are_marked() {
        let grid = hybrid_grid(CacheConfig::l1_default(32 * 1024, 4)).unwrap();
        // Row 0 (8K ways) holds the preferred full-associativity points.
        assert!(!grid.redundant[0][0], "32K 4-way is canonical");
        assert!(!grid.redundant[0][1], "24K 3-way is canonical");
        // 16K 2-way (row 0, col 2) duplicates 16K 4-way (row 1, col 0).
        assert!(grid.redundant[0][2]);
        assert!(!grid.redundant[1][0]);
        // 8K appears three times; only the 4-way variant is canonical.
        assert!(grid.redundant[0][3]);
        assert!(grid.redundant[1][2]);
        assert!(!grid.redundant[2][0]);
    }

    #[test]
    fn render_contains_all_sizes() {
        let grid = hybrid_grid(CacheConfig::l1_default(32 * 1024, 4)).unwrap();
        let text = grid.render();
        for token in ["32K", "24K", "12K", "6K", "3K", "1K", "4-way", "1-way"] {
            assert!(
                text.contains(token),
                "rendered table should contain {token}:\n{text}"
            );
        }
    }
}
