//! Inspects the dynamic-resizing candidate sweep for one application,
//! printing every candidate's parameters and outcome (used for tuning).

use rescache_core::experiment::{Runner, RunnerConfig};
use rescache_core::{Organization, ResizableCacheSide, SystemConfig};
use rescache_trace::spec;

fn main() {
    let app_name = std::env::args().nth(1).unwrap_or_else(|| "compress".into());
    let engine = std::env::args().nth(2).unwrap_or_else(|| "inorder".into());
    let app = spec::profile(&app_name).expect("known app");
    let system = if engine == "inorder" {
        SystemConfig::in_order()
    } else {
        SystemConfig::base()
    };
    let runner = Runner::new(RunnerConfig::from_env());

    let stat = runner
        .static_best(
            &app,
            &system,
            Organization::SelectiveSets,
            ResizableCacheSide::Data,
        )
        .unwrap();
    println!(
        "base: cycles={} energy={:.3e} dmr={:.3}",
        stat.base.cycles, stat.base.energy_pj, stat.base.l1d_miss_ratio
    );
    for (p, m) in &stat.evaluated {
        println!(
            "static {:>5}K: EDPred={:6.2}% slowdown={:5.2}% dmr={:.3}",
            p.bytes(32) / 1024,
            m.energy_delay().reduction_vs(&stat.base.energy_delay()),
            m.energy_delay().slowdown_vs(&stat.base.energy_delay()),
            m.l1d_miss_ratio
        );
    }
    let best_bytes = stat.best.point.map(|p| p.bytes(32)).unwrap_or(32 * 1024);
    let bounds = [best_bytes, best_bytes / 2, best_bytes / 4, 1];
    let dyn_out = runner
        .dynamic_best_with_size_bounds(
            &app,
            &system,
            Organization::SelectiveSets,
            ResizableCacheSide::Data,
            &bounds,
        )
        .unwrap();
    for (p, m) in &dyn_out.candidates {
        println!(
            "dyn bound={:>5}K missbound={:>5}: EDPred={:6.2}% slowdown={:5.2}% meanKB={:5.1} resizes={} dmr={:.3}",
            p.size_bound_bytes / 1024,
            p.miss_bound,
            m.energy_delay().reduction_vs(&stat.base.energy_delay()),
            m.energy_delay().slowdown_vs(&stat.base.energy_delay()),
            m.l1d_mean_bytes / 1024.0,
            m.l1d_resizes,
            m.l1d_miss_ratio
        );
    }
}
