//! Differential harness for the streamed dynamic-resizing pipeline: a
//! dynamic-controller run whose records are pulled chunk by chunk from the
//! trace store (resident cursor, on-disk reader, or resumable generator)
//! must be **bit-identical** to the classic path that materializes the warm
//! and measured traces first — same [`SimResult`], same resize counts, same
//! hierarchy snapshots, same energy breakdowns — on both engines, across
//! registry workloads and controller parameter candidates.
//!
//! The store-backed variants additionally assert the memory contract: with a
//! persistence directory configured, the whole dynamic sweep leaves **zero**
//! full-length traces materialized (only chunk buffers were resident).

use rescache::prelude::*;
use rescache_core::experiment::{Measurement, RunSetup, StoreSourceKind};
use rescache_trace::{TraceFormat, WorkloadRegistry};
use std::path::PathBuf;

fn engines() -> [SystemConfig; 2] {
    [SystemConfig::in_order(), SystemConfig::base()]
}

fn fast_config() -> RunnerConfig {
    RunnerConfig {
        warmup_instructions: 6_000,
        measure_instructions: 18_000,
        trace_seed: 42,
        dynamic_interval: 256,
        ..RunnerConfig::fast()
    }
}

/// Two miss-bound/size-bound candidates per sweep. The registry workloads
/// miss ~10–15 times per 256-access interval at full size, so a generous
/// miss-bound (64) commands steady downsizing to the floor while a tight one
/// (8) sits near the equilibrium and oscillates — both regimes exercise the
/// controller across the warm/measure boundary.
fn candidate_params(space: &ConfigSpace, interval: u64) -> Vec<DynamicParams> {
    vec![
        DynamicParams::new(interval, 64, space.min_bytes()).expect("valid params"),
        DynamicParams::new(interval, 8, space.sizes_bytes()[space.len() / 2])
            .expect("valid params"),
    ]
}

/// Asserts every observable of the two measurements is identical (not merely
/// close): timing, activity-derived energy breakdown, mean sizes, miss
/// ratios and resize counts.
fn assert_identical(label: &str, materialized: &Measurement, streamed: &Measurement) {
    assert_eq!(
        materialized, streamed,
        "{label}: streamed dynamic run diverged from the materialized path"
    );
    // Measurement's PartialEq covers every field, but spell out the ones the
    // issue names so a divergence pinpoints itself.
    assert_eq!(materialized.cycles, streamed.cycles, "{label}: cycles");
    assert_eq!(
        materialized.breakdown, streamed.breakdown,
        "{label}: energy breakdown"
    );
    assert_eq!(
        (materialized.l1d_resizes, materialized.l1i_resizes),
        (streamed.l1d_resizes, streamed.l1i_resizes),
        "{label}: resize counts"
    );
}

/// The core differential: for one (profile, system) pair, run every
/// candidate through the materialized `Runner::run` path and the streamed
/// `Runner::run_dynamic` path and require equality. `store_dir` selects the
/// store mode (None = in-memory, Some = persisted chunk streaming). Returns
/// the total resizes observed so callers can assert controller activity
/// where the workload makes it deterministic.
fn assert_dynamic_equivalence(
    profile: &AppProfile,
    system: &SystemConfig,
    store_dir: Option<PathBuf>,
    expect_no_materialization: bool,
) -> u64 {
    assert_dynamic_equivalence_in_format(
        profile,
        system,
        store_dir,
        expect_no_materialization,
        TraceFormat::default(),
    )
}

fn assert_dynamic_equivalence_in_format(
    profile: &AppProfile,
    system: &SystemConfig,
    store_dir: Option<PathBuf>,
    expect_no_materialization: bool,
    format: TraceFormat,
) -> u64 {
    let cfg = fast_config().with_trace_format(format);
    // Reference runner: plain in-memory store, classic materialized path.
    let reference = Runner::new(cfg);
    let (warm, measure) = reference.trace(profile);

    // Streamed runner: its own store in the requested mode.
    let streamed_runner = Runner::with_store(cfg, TraceStore::with_dir(store_dir));

    let space = ConfigSpace::enumerate(
        ResizableCacheSide::Data.config_of(&system.hierarchy),
        Organization::SelectiveSets,
    )
    .expect("selective-sets applies to the base d-cache");

    let mut resizes = 0;
    for params in candidate_params(&space, cfg.dynamic_interval) {
        let setup = RunSetup {
            dynamic: Some((ResizableCacheSide::Data, space.clone(), params)),
            d_tag_bits: 4,
            ..RunSetup::default()
        };
        let materialized = reference.run(&warm, &measure, system, &setup);
        let streamed = streamed_runner.run_dynamic(profile, system, &setup);
        let label = format!(
            "{} / {:?} / miss_bound {} size_bound {}",
            profile.name, system.cpu.engine, params.miss_bound, params.size_bound_bytes
        );
        assert_identical(&label, &materialized, &streamed);
        resizes += streamed.l1d_resizes;
    }

    if expect_no_materialization {
        assert_eq!(
            streamed_runner.trace_store().resident_full_traces(),
            0,
            "{}: a store-backed dynamic run must keep no full trace resident",
            profile.name
        );
    }
    resizes
}

#[test]
fn registry_workloads_match_across_engines_with_a_persistent_store() {
    let registry = WorkloadRegistry::builtin();
    // ≥4 registry workloads covering the controller's interesting regimes:
    // the all-round baseline, the dynamic-resizing target case, serial
    // misses, and MSHR saturation.
    for name in ["nominal", "phase_flip", "pointer_chase", "mshr_burst"] {
        let spec = registry.get(name).expect("registered workload");
        let profile = spec.profile();
        for system in engines() {
            let dir = std::env::temp_dir().join(format!(
                "rescache-dyneq-{name}-{:?}-{}",
                system.cpu.engine,
                std::process::id()
            ));
            std::fs::remove_dir_all(&dir).ok();
            let resizes = assert_dynamic_equivalence(&profile, &system, Some(dir.clone()), true);
            if name == "nominal" || name == "phase_flip" {
                assert!(
                    resizes > 0,
                    "{name}: an L1-friendly workload must trigger downsizing"
                );
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

#[test]
fn paper_profiles_match_with_an_in_memory_store() {
    // The in-memory store serves resident cursors instead of disk chunks:
    // same contract, different source kind.
    for profile in [spec::su2cor(), spec::compress()] {
        for system in engines() {
            assert_dynamic_equivalence(&profile, &system, None, false);
        }
    }
}

#[test]
fn v1_format_matches_across_the_persistent_store() {
    // The v1 differential kept alive: a v1-pinned dynamic run must stream
    // bit-identically through a persistent store (v1 entries on disk, v1
    // memo keys) exactly as the default format does — and still leave
    // nothing materialized.
    let profile = WorkloadRegistry::builtin()
        .get("phase_flip")
        .expect("registered workload")
        .profile();
    let dir = std::env::temp_dir().join(format!("rescache-dyneq-v1-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let resizes = assert_dynamic_equivalence_in_format(
        &profile,
        &SystemConfig::base(),
        Some(dir.clone()),
        true,
        TraceFormat::V1,
    );
    assert!(
        resizes > 0,
        "phase_flip must trigger downsizing under v1 too"
    );
    // The store entries the run produced are v1-tagged files.
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("store dir")
        .map(|e| e.expect("entry").file_name().into_string().expect("utf8"))
        .collect();
    entries.sort();
    assert!(
        !entries.is_empty()
            && entries
                .iter()
                .all(|n| n.ends_with(".rctrace") && !n.ends_with(".v2.rctrace")),
        "v1 runs must persist v1-suffixed entries: {entries:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn full_dynamic_sweep_is_identical_and_unmaterialized_with_a_store_dir() {
    // End-to-end: `dynamic_best_with_size_bounds` (baseline + snapped
    // candidate sweep, all streamed) must equal the same sweep run by a
    // reference runner, and with a persistence directory it must finish with
    // zero materialized traces.
    let cfg = fast_config();
    let app = spec::su2cor();
    let dir = std::env::temp_dir().join(format!("rescache-dyneq-sweep-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let reference = Runner::new(cfg);
    let streamed = Runner::with_store(cfg, TraceStore::with_dir(Some(dir.clone())));
    for system in engines() {
        let expected = reference
            .dynamic_best(
                &app,
                &system,
                Organization::SelectiveSets,
                ResizableCacheSide::Data,
            )
            .expect("sweep runs");
        let got = streamed
            .dynamic_best(
                &app,
                &system,
                Organization::SelectiveSets,
                ResizableCacheSide::Data,
            )
            .expect("sweep runs");
        assert_eq!(expected.candidates.len(), got.candidates.len());
        for ((p_ref, m_ref), (p_got, m_got)) in expected.candidates.iter().zip(&got.candidates) {
            assert_eq!(p_ref, p_got);
            assert_identical(
                &format!("sweep {:?} {p_ref:?}", system.cpu.engine),
                m_ref,
                m_got,
            );
        }
        assert_identical(
            &format!("sweep base {:?}", system.cpu.engine),
            &expected.base,
            &got.base,
        );
        assert_eq!(
            expected.best.edp_reduction_percent,
            got.best.edp_reduction_percent
        );
    }
    assert_eq!(
        streamed.trace_store().resident_full_traces(),
        0,
        "the whole dynamic sweep ran without materializing a trace"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn streamed_dynamic_run_survives_a_corrupted_store_entry() {
    // Corrupt the persisted entry after it is written: the chunked reader
    // faults mid-run, and the runner must fall back to regeneration and
    // still produce the exact materialized-path result.
    let cfg = fast_config();
    let app = spec::m88ksim();
    let system = SystemConfig::base();
    let dir = std::env::temp_dir().join(format!("rescache-dyneq-corrupt-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let streamed = Runner::with_store(cfg, TraceStore::with_dir(Some(dir.clone())));
    // Populate the entry (and prove the store really serves from disk).
    let probe = streamed.trace_store().source(&app, &cfg);
    assert_eq!(probe.kind(), StoreSourceKind::Disk);
    drop(probe);
    let entry = std::fs::read_dir(&dir)
        .expect("store dir")
        .next()
        .expect("one entry")
        .expect("entry")
        .path();
    let mut bytes = std::fs::read(&entry).expect("read entry");
    // Wreck the *second* chunk's directory entry so the fault hits mid-run.
    // v3 compressed container: magic(8) + flags(1) + name_len(4) + name +
    // count(8), then per chunk [len u32][byte_len u32][payload].
    assert_eq!(&bytes[..8], b"RCTRACE3");
    assert_eq!(bytes[8], 1, "store entries are compressed by default");
    let first_chunk = 9 + 4 + app.name.len() + 8;
    let first_bytes = u32::from_le_bytes(
        bytes[first_chunk + 4..first_chunk + 8]
            .try_into()
            .expect("4 bytes"),
    ) as usize;
    let second_chunk = first_chunk + 8 + first_bytes;
    bytes[second_chunk + 4..second_chunk + 8].copy_from_slice(&u32::MAX.to_le_bytes());
    std::fs::write(&entry, &bytes).expect("corrupt entry");

    let space = ConfigSpace::enumerate(
        ResizableCacheSide::Data.config_of(&system.hierarchy),
        Organization::SelectiveSets,
    )
    .expect("space");
    let params = DynamicParams::new(cfg.dynamic_interval, 4, space.min_bytes()).expect("params");
    let setup = RunSetup {
        dynamic: Some((ResizableCacheSide::Data, space, params)),
        d_tag_bits: 4,
        ..RunSetup::default()
    };

    let reference = Runner::new(cfg);
    let (warm, measure) = reference.trace(&app);
    let expected = reference.run(&warm, &measure, &system, &setup);
    let got = streamed.run_dynamic(&app, &system, &setup);
    assert_identical("corrupt-entry fallback", &expected, &got);

    // The fallback also invalidates the corrupt entry, so the store
    // self-heals: the next run replays a fresh on-disk entry fault-free
    // instead of paying the doomed partial replay forever.
    let healed = streamed.trace_store().source(&app, &cfg);
    assert_eq!(healed.kind(), StoreSourceKind::Disk);
    drop(healed);
    let again = streamed.run_dynamic(&app, &system, &setup);
    assert_identical("healed entry", &expected, &again);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn static_setups_also_stream_identically() {
    // run_dynamic with no controller delegates to the memoized static path
    // with a streaming initializer: still bit-identical.
    let cfg = fast_config();
    let app = spec::ammp();
    let system = SystemConfig::base();
    let dir = std::env::temp_dir().join(format!("rescache-dyneq-static-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let reference = Runner::new(cfg);
    let streamed = Runner::with_store(cfg, TraceStore::with_dir(Some(dir.clone())));
    let setup = RunSetup {
        d_static: Some(CachePoint { sets: 64, ways: 2 }),
        d_tag_bits: 4,
        ..RunSetup::default()
    };
    let (warm, measure) = reference.trace(&app);
    let expected = reference.run(&warm, &measure, &system, &setup);
    let got = streamed.run_dynamic(&app, &system, &setup);
    assert_identical("streamed static", &expected, &got);
    assert_eq!(streamed.trace_store().resident_full_traces(), 0);
    std::fs::remove_dir_all(&dir).ok();
}
