//! Integration test: the base system's energy breakdown sits where the paper
//! puts it, and cache energy responds to resizing the way the study assumes.

use rescache::prelude::*;

fn simulate(app: &str) -> (SimResult, MemoryHierarchy) {
    let profile = spec::profile(app).expect("known application");
    let full = TraceGenerator::new(profile, 9).generate(60_000);
    let warm = Trace::new(app, full.records()[..20_000].to_vec());
    let measure = Trace::new(app, full.records()[20_000..].to_vec());
    let mut hierarchy = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
    let sim = Simulator::new(CpuConfig::base_out_of_order());
    sim.run(&warm, &mut hierarchy);
    hierarchy.reset_stats();
    let result = sim.run(&measure, &mut hierarchy);
    (result, hierarchy)
}

/// Section 4 of the paper: on average the d-cache accounts for ~18.5 % and
/// the i-cache for ~17.5 % of processor energy in the base configuration.
/// The synthetic workloads must land in a band around those shares, otherwise
/// none of the percentage reductions in the figures are comparable.
#[test]
fn l1_caches_take_their_share_of_processor_energy() {
    let model = EnergyModel::for_hierarchy(&HierarchyConfig::base());
    let mut d = 0.0;
    let mut i = 0.0;
    let apps = spec::APP_NAMES;
    for app in apps {
        let (result, hierarchy) = simulate(app);
        let b = model.breakdown(&result, &hierarchy);
        d += b.l1d_fraction();
        i += b.l1i_fraction();
    }
    let d_mean = d / apps.len() as f64;
    let i_mean = i / apps.len() as f64;
    assert!(
        (0.14..=0.25).contains(&d_mean),
        "mean d-cache energy share {d_mean:.3} outside the calibration band (paper: 0.185)"
    );
    assert!(
        (0.11..=0.22).contains(&i_mean),
        "mean i-cache energy share {i_mean:.3} outside the calibration band (paper: 0.175)"
    );
    assert!(
        (0.27..=0.45).contains(&(d_mean + i_mean)),
        "combined L1 share {:.3} outside the calibration band (paper: 0.36)",
        d_mean + i_mean
    );
}

/// Disabling subarrays must reduce the resized cache's energy roughly in
/// proportion to the disabled capacity (the precharge-all model of Section 3).
#[test]
fn cache_energy_scales_with_enabled_capacity() {
    let model = EnergyModel::for_hierarchy(&HierarchyConfig::base());
    let l1d = model.l1d_model();
    let full = l1d.access_energy_pj(512, 2);
    let quarter = l1d.access_energy_pj(128, 2);
    let ratio = quarter / full;
    assert!(
        (0.2..=0.45).contains(&ratio),
        "a quarter-size cache access should cost roughly a quarter to a third \
         of a full-size access (got ratio {ratio:.2})"
    );
}

/// The resizing tag bits of selective-sets cost a little energy — but only a
/// little (the paper calls the overhead insignificant).
#[test]
fn resizing_tag_overhead_is_small_but_present() {
    let base = EnergyModel::for_hierarchy(&HierarchyConfig::base());
    let resizable = EnergyModel::with_overhead(
        &HierarchyConfig::base(),
        rescache::energy::ResizingTagOverhead {
            l1i_bits: 4,
            l1d_bits: 4,
        },
    );
    let plain = base.l1d_model().access_energy_pj(512, 2);
    let tagged = resizable.l1d_model().access_energy_pj(512, 2);
    assert!(tagged > plain);
    assert!(
        tagged / plain < 1.05,
        "resizing tag bits should cost only a few percent, got {:.3}",
        tagged / plain
    );
}

/// The whole-processor energy-delay product of a resized run is what the
/// experiment pipeline reports: sanity-check the plumbing end to end for one
/// application and one resized configuration.
#[test]
fn resizing_the_dcache_saves_processor_energy_for_a_small_working_set() {
    let model = EnergyModel::for_hierarchy(&HierarchyConfig::base());
    let profile = spec::ammp();
    let trace = TraceGenerator::new(profile, 4).generate(60_000);
    let sim = Simulator::new(CpuConfig::base_out_of_order());

    let mut full = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
    let full_result = sim.run(&trace, &mut full);
    let full_ed = model.energy_delay(&full_result, &full);

    let mut small = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
    small.l1d_mut().set_enabled_sets(64); // 4 KiB
    let small_result = sim.run(&trace, &mut small);
    let small_ed = model.energy_delay(&small_result, &small);

    assert!(
        small_ed.reduction_vs(&full_ed) > 5.0,
        "ammp with a 4K d-cache should clearly reduce processor energy-delay, got {:.1} %",
        small_ed.reduction_vs(&full_ed)
    );
    assert!(
        small_ed.slowdown_vs(&full_ed) < 6.0,
        "the paper's savings come at <6 % slowdown; got {:.1} %",
        small_ed.slowdown_vs(&full_ed)
    );
}
