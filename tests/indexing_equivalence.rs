//! Equivalence of the shift/mask fast indexing path against a straight
//! div/mod reference model.
//!
//! The optimized [`rescache::cache::Cache`] computes block addresses with a
//! shift and set indices with a mask (maintained across resizes) and chooses
//! LRU victims with a single inline scan. This test drives randomized access
//! / fill / resize sequences through the real cache and through a naive
//! reference model that uses division, modulo and an explicit stamp sort —
//! the arithmetic of the original kernel — and asserts the two produce
//! identical hit/miss and eviction sequences and identical final contents.

use rescache::cache::{Cache, CacheConfig};
use rescache_testutil::{check_cases, TestRng};

/// A frame of the reference model.
#[derive(Clone, Copy, Default)]
struct RefFrame {
    valid: bool,
    dirty: bool,
    block_addr: u64,
    stamp: u64,
}

/// A deliberately naive resizable LRU cache using div/mod indexing.
struct RefCache {
    config: CacheConfig,
    sets: Vec<Vec<RefFrame>>,
    enabled_sets: u64,
    enabled_ways: u32,
    clock: u64,
}

impl RefCache {
    fn new(config: CacheConfig) -> Self {
        let sets = (0..config.num_sets())
            .map(|_| vec![RefFrame::default(); config.associativity as usize])
            .collect();
        Self {
            config,
            sets,
            enabled_sets: config.num_sets(),
            enabled_ways: config.associativity,
            clock: 0,
        }
    }

    fn index(&self, addr: u64) -> (usize, u64) {
        let block_addr = addr / self.config.block_bytes;
        ((block_addr % self.enabled_sets) as usize, block_addr)
    }

    fn access(&mut self, addr: u64, write: bool) -> bool {
        self.clock += 1;
        let clock = self.clock;
        let ways = self.enabled_ways as usize;
        let (index, block_addr) = self.index(addr);
        for frame in self.sets[index].iter_mut().take(ways) {
            if frame.valid && frame.block_addr == block_addr {
                frame.stamp = clock;
                frame.dirty |= write;
                return true;
            }
        }
        false
    }

    /// Fills a block; returns `Some((victim_block, victim_dirty))` on an
    /// eviction, mirroring `Cache::fill`.
    fn fill(&mut self, addr: u64, dirty: bool) -> Option<(u64, bool)> {
        self.clock += 1;
        let clock = self.clock;
        let ways = self.enabled_ways as usize;
        let (index, block_addr) = self.index(addr);
        let set = &mut self.sets[index];
        if let Some(frame) = set
            .iter_mut()
            .take(ways)
            .find(|f| f.valid && f.block_addr == block_addr)
        {
            frame.stamp = clock;
            frame.dirty |= dirty;
            return None;
        }
        // Victim: first invalid frame, else the minimum stamp (explicitly
        // collected and scanned, like the original kernel).
        let victim_way = match set.iter().take(ways).position(|f| !f.valid) {
            Some(way) => way,
            None => {
                let stamps: Vec<u64> = set.iter().take(ways).map(|f| f.stamp).collect();
                let min = *stamps.iter().min().expect("non-empty stamp list");
                stamps.iter().position(|s| *s == min).expect("min exists")
            }
        };
        let victim = set[victim_way];
        let eviction = victim.valid.then_some((victim.block_addr, victim.dirty));
        set[victim_way] = RefFrame {
            valid: true,
            dirty,
            block_addr,
            stamp: clock,
        };
        eviction
    }

    fn set_enabled_sets(&mut self, sets: u64) {
        if sets < self.enabled_sets {
            for set in self.sets[(sets as usize)..(self.enabled_sets as usize)].iter_mut() {
                for frame in set.iter_mut() {
                    frame.valid = false;
                    frame.dirty = false;
                }
            }
        } else {
            for (index, set) in self
                .sets
                .iter_mut()
                .enumerate()
                .take(self.enabled_sets as usize)
            {
                for frame in set.iter_mut() {
                    if frame.valid && (frame.block_addr % sets) as usize != index {
                        frame.valid = false;
                        frame.dirty = false;
                    }
                }
            }
        }
        self.enabled_sets = sets;
    }

    fn set_enabled_ways(&mut self, ways: u32) {
        if ways < self.enabled_ways {
            for set in self.sets.iter_mut() {
                for frame in set
                    .iter_mut()
                    .take(self.enabled_ways as usize)
                    .skip(ways as usize)
                {
                    frame.valid = false;
                    frame.dirty = false;
                }
            }
        }
        self.enabled_ways = ways;
    }

    fn contains(&self, addr: u64) -> bool {
        let (index, block_addr) = self.index(addr);
        self.sets[index]
            .iter()
            .take(self.enabled_ways as usize)
            .any(|f| f.valid && f.block_addr == block_addr)
    }
}

fn cache_config(rng: &mut TestRng) -> CacheConfig {
    let size_exp = rng.below(4) as u32;
    let size = (4 * 1024u64) << size_exp;
    let assoc_exp = rng.range_u32(0, 3 + size_exp);
    CacheConfig::l1_default(size, 1u32 << assoc_exp)
}

/// The optimized kernel and the div/mod reference agree on every hit/miss,
/// every eviction (victim block and dirtiness), and the final contents,
/// across randomized access patterns interleaved with resizes.
#[test]
fn shift_mask_path_matches_div_mod_reference() {
    check_cases(96, |rng| {
        let config = cache_config(rng);
        let mut real = Cache::new(config).unwrap();
        let mut reference = RefCache::new(config);

        let ops = rng.range_usize(50, 400);
        let mut addrs = Vec::new();
        for step in 0..ops {
            // Occasionally resize both models identically.
            if step > 0 && rng.chance(0.03) {
                if rng.bool() && config.min_sets() < config.num_sets() {
                    let span = config.num_sets() / config.min_sets();
                    let factor = 1u64 << rng.below(span.trailing_zeros() as u64 + 1);
                    let sets = config.num_sets() / factor;
                    real.set_enabled_sets(sets);
                    reference.set_enabled_sets(sets);
                } else {
                    let ways = rng.range_u32(1, config.associativity + 1);
                    real.set_enabled_ways(ways);
                    reference.set_enabled_ways(ways);
                }
            }

            let addr = rng.below(4096) * 32 + rng.below(32);
            addrs.push(addr);
            let write = rng.chance(0.3);

            let real_hit = real.access(
                addr,
                if write {
                    rescache::cache::AccessKind::Write
                } else {
                    rescache::cache::AccessKind::Read
                },
            );
            let ref_hit = reference.access(addr, write);
            assert_eq!(real_hit.hit, ref_hit, "step {step}: hit/miss diverged");

            if !real_hit.hit {
                let real_evict = real.fill(addr, write);
                let ref_evict = reference.fill(addr, write);
                assert_eq!(
                    real_evict.map(|e| (e.block_addr, e.dirty)),
                    ref_evict,
                    "step {step}: eviction diverged"
                );
            }
        }

        // Final contents agree for every touched address.
        for addr in addrs {
            assert_eq!(real.contains(addr), reference.contains(addr));
        }
    });
}
