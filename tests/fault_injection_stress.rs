//! Multi-threaded fault-injection stress for the shared store/memo tier.
//!
//! N worker threads share one [`SharedTier`] (one trace memo, one sim memo,
//! one persistence directory, one fault injector) and each computes the full
//! sweep of (application, setup) measurements. The contract under test:
//!
//! * **Determinism** — with or without injected faults, every thread's every
//!   measurement is bit-identical to a fault-free, single-threaded,
//!   in-memory reference. Faults may cost retries, regenerations or
//!   degradation to in-memory streaming; they must never change a result.
//! * **Single-flight** — the shared memos admit one generation per key; the
//!   fault-free threaded sweep's miss count stays within the key-count
//!   bound no matter how many threads race.
//! * **No poisoning** — a worker that panics mid-generation (injected via a
//!   scripted fault) must not wedge or poison the tier: sibling threads
//!   complete with correct results and a later request regenerates cleanly.

use rescache::prelude::*;
use rescache_core::experiment::{Measurement, RunSetup, SharedTier};
use rescache_trace::{FaultInjector, FaultKind, FaultSpec, IoOp, IoPolicy, ScriptedFault};
use std::path::PathBuf;
use std::sync::Arc;

const THREADS: usize = 8;

fn stress_config() -> RunnerConfig {
    RunnerConfig {
        warmup_instructions: 4_000,
        measure_instructions: 12_000,
        trace_seed: 42,
        dynamic_interval: 256,
        ..RunnerConfig::fast()
    }
}

fn apps() -> [AppProfile; 4] {
    [spec::ammp(), spec::gcc(), spec::vpr(), spec::swim()]
}

/// One static baseline and one dynamic-controller setup per application —
/// the static arm exercises the memoized sim path, the dynamic arm streams
/// every record through the store on every call.
fn setups(system: &SystemConfig, interval: u64) -> Vec<RunSetup> {
    let space = ConfigSpace::enumerate(
        ResizableCacheSide::Data.config_of(&system.hierarchy),
        Organization::SelectiveSets,
    )
    .expect("selective-sets applies to the base d-cache");
    let params = DynamicParams::new(interval, 8, space.min_bytes()).expect("valid dynamic params");
    vec![
        RunSetup::default(),
        RunSetup {
            dynamic: Some((ResizableCacheSide::Data, space, params)),
            d_tag_bits: 4,
            ..RunSetup::default()
        },
    ]
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rescache-stress-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// The fault-free, single-threaded, in-memory reference sweep.
fn reference_sweep(cfg: RunnerConfig) -> Vec<Measurement> {
    let runner = Runner::new(cfg);
    let system = SystemConfig::base();
    let mut out = Vec::new();
    for app in apps() {
        for setup in setups(&system, cfg.dynamic_interval) {
            out.push(runner.run_dynamic(&app, &system, &setup));
        }
    }
    out
}

/// Runs the full sweep on `THREADS` threads sharing `tier`; every thread
/// computes every measurement. Panics in a worker propagate to the caller.
fn threaded_sweep(cfg: RunnerConfig, tier: &SharedTier) -> Vec<Vec<Measurement>> {
    let runner = Runner::with_store(cfg, TraceStore::with_tier(tier.clone()));
    let system = SystemConfig::base();
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let runner = runner.clone();
            std::thread::spawn(move || {
                let mut out = Vec::new();
                for app in apps() {
                    for setup in setups(&system, cfg.dynamic_interval) {
                        out.push(runner.run_dynamic(&app, &system, &setup));
                    }
                }
                out
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("worker thread completes"))
        .collect()
}

#[test]
fn fault_free_threaded_sweep_is_identical_and_single_flight() {
    let cfg = stress_config();
    let expected = reference_sweep(cfg);

    let dir = temp_dir("clean");
    let tier = SharedTier::new(Some(dir.clone()), IoPolicy::none());
    let results = threaded_sweep(cfg, &tier);
    for (t, sweep) in results.iter().enumerate() {
        assert_eq!(sweep, &expected, "thread {t} diverged from the reference");
    }

    let health = tier.health_snapshot();
    // Single-flight: one persisted entry per store key and one simulation
    // per sim key, no matter how many threads race. Misses are counted at
    // both the sim memo and the persist initializer, so the bound is the
    // sum of the two key populations (static arm only — dynamic runs are
    // not memoized — plus slack for a cold source racing a persist).
    let store_keys = apps().len();
    let sim_keys = apps().len();
    assert!(
        health.misses as usize <= sim_keys + 2 * store_keys,
        "single-flight bound exceeded: {health:?}"
    );
    assert!(health.hits > 0, "threaded reuse must register hits");
    assert_eq!(health.regenerations, 0, "no faults, no regenerations");
    assert_eq!(health.quarantines, 0, "no faults, no quarantines");
    assert!(!health.degraded, "no faults, no degradation");
    assert_eq!(
        std::fs::read_dir(&dir).expect("store dir").count(),
        store_keys,
        "exactly one persisted entry per application"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn seeded_faults_leave_the_threaded_sweep_bit_identical() {
    let cfg = stress_config();
    let expected = reference_sweep(cfg);

    let dir = temp_dir("faulted");
    let spec = FaultSpec::parse("seed=11,open=0.05,read=0.02,write=0.05,rename=0.05,full=0.01")
        .expect("valid fault spec");
    let injector = Arc::new(FaultInjector::seeded(spec));
    let tier = SharedTier::new(Some(dir.clone()), IoPolicy::with_injector(injector.clone()));
    let results = threaded_sweep(cfg, &tier);
    for (t, sweep) in results.iter().enumerate() {
        assert_eq!(
            sweep, &expected,
            "thread {t} diverged under injected faults"
        );
    }
    assert!(
        injector.injected() > 0,
        "the stress run must actually exercise the fault paths"
    );
    // Recovery must be *accounted*, not silent: every injected fault lands
    // in a health counter (retry, regeneration, quarantine, extra miss or
    // degradation) rather than vanishing.
    let health = tier.health_snapshot();
    assert!(
        health.retries + health.regenerations + health.misses + health.warnings > 0,
        "injected faults left no recovery trace: {health:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_panicking_worker_does_not_poison_its_siblings() {
    let cfg = stress_config();
    let app = spec::ammp();
    let reference = {
        let runner = Runner::new(cfg);
        runner.trace(&app)
    };

    let dir = temp_dir("panic");
    let injector = Arc::new(FaultInjector::scripted([ScriptedFault {
        op: IoOp::Write,
        kind: FaultKind::Panic,
    }]));
    let tier = SharedTier::new(Some(dir.clone()), IoPolicy::with_injector(injector));
    let store = TraceStore::with_tier(tier.clone());

    // Whichever worker reaches the persist write first consumes the one
    // scripted panic and dies inside the trace memo's initializer; the
    // others must complete with the correct trace regardless.
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let store = store.clone();
            let app = app.clone();
            std::thread::spawn(move || store.fetch(&app, &cfg))
        })
        .collect();
    let mut panicked = 0;
    for handle in handles {
        match handle.join() {
            Ok(fetched) => assert_eq!(fetched, reference, "sibling served a wrong trace"),
            Err(_) => panicked += 1,
        }
    }
    assert_eq!(
        panicked, 1,
        "exactly one worker consumes the scripted panic"
    );

    // The tier survived the unwound initializer: a later fetch on the main
    // thread is served (memoized by a sibling) and the store is not
    // degraded or quarantining anything.
    assert_eq!(store.fetch(&app, &cfg), reference);
    let health = store.health();
    assert!(!health.degraded, "a panic is not a degradation: {health:?}");
    assert_eq!(health.quarantines, 0, "{health:?}");
    std::fs::remove_dir_all(&dir).ok();
}
