//! Integration tests of the sweep service: the JSON-lines request server
//! over the shared store/memo tier.
//!
//! The contract under test:
//!
//! * **Coalescing** — N concurrent clients requesting the same cold point
//!   trigger exactly one simulation (and one trace generation); everything
//!   beyond those two misses is a `hit` or a `coalesced` in the tier's
//!   health counters. Likewise N clients running the same sweep share one
//!   simulation per unique point.
//! * **Robustness** — malformed, oversized and unserviceable request lines
//!   get typed `ok:false` responses on a connection that stays usable;
//!   never a panic, never a silent disconnect.
//! * **Degradation** — with injected disk faults the service keeps serving
//!   correct results while the store degrades to in-memory operation.
//! * **Cancellation** — a `cancel` naming an in-flight sweep (or the client
//!   disconnecting mid-stream) stops the shared point cursor: provably
//!   fewer points are evaluated than the space offers.
//! * **Quotas** — `ServeConfig::max_requests_per_conn` closes a connection
//!   with a typed `quota_exhausted` error once exceeded.
//! * **Dynamic verb** — a `dynamic` request streams the controller's resize
//!   decisions and its done line matches the in-process
//!   `Runner::run_dynamic` bit-for-bit.
//! * **Multi-process** — N server *processes* sharing one
//!   `RESCACHE_TRACE_DIR` share trace generation through the store's entry
//!   locks and agree bit-for-bit.
//! * **Shutdown** — a `shutdown` request drains the server cleanly, even
//!   when the server was bound to a wildcard address with no clients.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use rescache::prelude::*;
use rescache_core::experiment::{RunSetup, ServeConfig, SharedTier, SweepServer};
use rescache_core::json::Json;
use rescache_trace::{FaultInjector, FaultSpec, IoPolicy};

fn service_config() -> RunnerConfig {
    RunnerConfig {
        warmup_instructions: 4_000,
        measure_instructions: 12_000,
        ..RunnerConfig::fast()
    }
}

/// Binds a server over `tier` on an ephemeral port and serves it in the
/// background. Returns the address and the stop/join pair.
fn spawn_server(
    tier: SharedTier,
) -> (
    SocketAddr,
    rescache_core::experiment::ServerHandle,
    std::thread::JoinHandle<()>,
) {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServeConfig::default()
    };
    spawn_server_with(service_config(), tier, config)
}

/// [`spawn_server`] with explicit runner and serve configurations (for the
/// quota, cancellation and disconnect tests, which need a request cap or a
/// single slow worker).
fn spawn_server_with(
    runner_config: RunnerConfig,
    tier: SharedTier,
    config: ServeConfig,
) -> (
    SocketAddr,
    rescache_core::experiment::ServerHandle,
    std::thread::JoinHandle<()>,
) {
    let runner = Runner::with_store(runner_config, TraceStore::with_tier(tier));
    let server = SweepServer::bind(runner, config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let (handle, join) = server.spawn().expect("spawn server");
    (addr, handle, join)
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Self {
        let writer = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(writer.try_clone().expect("clone stream"));
        Self { reader, writer }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send request");
    }

    fn recv(&mut self) -> Json {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "server closed the connection unexpectedly");
        Json::parse(line.trim_end()).expect("response is valid JSON")
    }

    fn request(&mut self, line: &str) -> Json {
        self.send(line);
        self.recv()
    }
}

fn is_ok(response: &Json) -> bool {
    response.get("ok").and_then(Json::as_bool) == Some(true)
}

fn kind(response: &Json) -> &str {
    response.get("kind").and_then(Json::as_str).unwrap_or("")
}

/// The number of points selective-sets offers on the base d-cache — the
/// per-unique-point simulation bound the sweep assertions use.
fn selective_sets_points() -> usize {
    let system = SystemConfig::base();
    ConfigSpace::enumerate(system.hierarchy.l1d, Organization::SelectiveSets)
        .expect("selective-sets applies to the base d-cache")
        .len()
}

#[test]
fn concurrent_point_requests_coalesce_to_one_simulation() {
    let tier = SharedTier::new(None, IoPolicy::none());
    let (addr, handle, join) = spawn_server(tier.clone());

    // Every client asks for the same cold full-size point.
    let system = SystemConfig::base();
    let request = format!(
        r#"{{"req":"point","id":7,"app":"ammp","sets":{},"ways":{}}}"#,
        system.hierarchy.l1d.num_sets(),
        system.hierarchy.l1d.associativity
    );
    const CLIENTS: usize = 6;
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            let request = &request;
            scope.spawn(move || {
                let mut client = Client::connect(addr);
                let response = client.request(request);
                assert!(is_ok(&response), "{response:?}");
                assert_eq!(kind(&response), "result");
                assert_eq!(response.get("id").and_then(Json::as_u64), Some(7));
                assert!(response.get("cycles").and_then(Json::as_u64).unwrap() > 0);
            });
        }
    });

    let health = tier.health_snapshot();
    // One trace generation + one simulation, no matter how many clients
    // raced: the single-flight memos coalesce everything else.
    assert_eq!(health.misses, 2, "{health:?}");
    assert_eq!(
        health.hits + health.coalesced,
        (CLIENTS - 1) as u64,
        "every non-running client shared the one simulation: {health:?}"
    );
    assert_eq!(health.requests, CLIENTS as u64, "{health:?}");
    assert_eq!(health.served, CLIENTS as u64, "{health:?}");

    handle.stop();
    join.join().expect("server thread exits cleanly");
}

#[test]
fn overlapping_sweeps_share_one_simulation_per_unique_point() {
    let tier = SharedTier::new(None, IoPolicy::none());
    let (addr, handle, join) = spawn_server(tier.clone());
    let points = selective_sets_points();

    const CLIENTS: usize = 3;
    std::thread::scope(|scope| {
        for id in 0..CLIENTS {
            scope.spawn(move || {
                let mut client = Client::connect(addr);
                client.send(&format!(
                    r#"{{"req":"sweep","id":{id},"app":"ammp","org":"selective_sets","side":"data"}}"#
                ));
                let mut results = 0;
                loop {
                    let response = client.recv();
                    assert!(is_ok(&response), "{response:?}");
                    assert_eq!(response.get("id").and_then(Json::as_u64), Some(id as u64));
                    match kind(&response) {
                        "result" => results += 1,
                        "done" => {
                            assert_eq!(
                                response.get("points").and_then(Json::as_u64),
                                Some(results as u64)
                            );
                            let best = response.get("best").expect("done carries best point");
                            assert!(best.get("sets").and_then(Json::as_u64).is_some());
                            break;
                        }
                        other => panic!("unexpected response kind {other:?}: {response:?}"),
                    }
                }
                assert_eq!(results, points, "one line per sweep point");
            });
        }
    });

    let health = tier.health_snapshot();
    // Unique work across all clients: one trace generation plus one
    // simulation per point (the sweep's full-size baseline shares the
    // full point's memo key).
    assert_eq!(health.misses as usize, points + 1, "{health:?}");
    assert_eq!(health.requests, CLIENTS as u64, "{health:?}");
    // Every sweep serves its full-size baseline plus one line per point.
    assert_eq!(health.served, (CLIENTS * (points + 1)) as u64, "{health:?}");
    let rate = health.result_cache_hit_rate().expect("lookups happened");
    assert!(rate > 0.5, "most lookups were shared: {health:?}");

    handle.stop();
    join.join().expect("server thread exits cleanly");
}

#[test]
fn malformed_and_oversized_lines_get_typed_errors_and_the_connection_survives() {
    let tier = SharedTier::new(None, IoPolicy::none());
    let (addr, handle, join) = spawn_server(tier);
    let mut client = Client::connect(addr);

    for (bad, expect) in [
        ("this is not json", "malformed request"),
        (r#"{"no_req":true}"#, "missing \"req\""),
        (r#"{"req":"frobnicate"}"#, "unknown request"),
        (r#"{"req":"point","id":1}"#, "missing \"app\""),
        (
            r#"{"req":"point","app":"no_such_app"}"#,
            "unknown application",
        ),
        (
            r#"{"req":"point","app":"ammp","sets":7,"ways":2}"#,
            "not offered",
        ),
        (
            r#"{"req":"point","app":"ammp","sets":64}"#,
            "both \"sets\" and \"ways\"",
        ),
        (
            r#"{"req":"sweep","app":"ammp","org":"bogus"}"#,
            "unknown org",
        ),
    ] {
        let response = client.request(bad);
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(false),
            "{bad} -> {response:?}"
        );
        let error = response
            .get("error")
            .and_then(Json::as_str)
            .expect("typed error");
        assert!(error.contains(expect), "{bad} -> {error}");
    }

    // An oversized line (beyond the 64 KiB cap) is answered and skipped
    // without buffering it or killing the connection.
    let mut huge = String::with_capacity(100_000);
    huge.push_str(r#"{"req":"point","pad":""#);
    huge.push_str(&"x".repeat(100_000 - huge.len() - 2));
    huge.push_str("\"}");
    let response = client.request(&huge);
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    assert!(response
        .get("error")
        .and_then(Json::as_str)
        .expect("typed error")
        .contains("exceeds"));

    // The same connection still serves real requests afterwards.
    let pong = client.request(r#"{"req":"ping","id":9}"#);
    assert!(is_ok(&pong), "{pong:?}");
    assert_eq!(kind(&pong), "pong");
    assert_eq!(pong.get("id").and_then(Json::as_u64), Some(9));

    handle.stop();
    join.join().expect("server thread exits cleanly");
}

#[test]
fn sweep_service_survives_disk_faults_and_degrades_gracefully() {
    // A store directory with aggressive write faults: persistence fails,
    // the tier degrades to in-memory operation mid-serve, and every client
    // still gets a full, correct sweep.
    let dir = std::env::temp_dir().join(format!("rescache-serve-faults-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let spec = FaultSpec::parse("seed=7,write=0.5,full=1.0").expect("valid fault spec");
    let faulty = SharedTier::new(
        Some(dir.clone()),
        IoPolicy::with_injector(std::sync::Arc::new(FaultInjector::seeded(spec))),
    );
    let (addr, handle, join) = spawn_server(faulty.clone());

    let mut client = Client::connect(addr);
    client.send(r#"{"req":"sweep","id":1,"app":"gcc","org":"selective_sets"}"#);
    let mut results: Vec<Json> = Vec::new();
    loop {
        let response = client.recv();
        assert!(
            is_ok(&response),
            "faults must not fail requests: {response:?}"
        );
        if kind(&response) == "done" {
            break;
        }
        results.push(response);
    }
    assert_eq!(results.len(), selective_sets_points());

    // Reference: the same sweep on a fault-free in-memory tier must produce
    // bit-identical cycle counts (faults may cost retries or degradation,
    // never results).
    let clean = SharedTier::new(None, IoPolicy::none());
    let (clean_addr, clean_handle, clean_join) = spawn_server(clean);
    let mut reference = Client::connect(clean_addr);
    reference.send(r#"{"req":"sweep","id":1,"app":"gcc","org":"selective_sets"}"#);
    let mut reference_results: Vec<Json> = Vec::new();
    loop {
        let response = reference.recv();
        if kind(&response) == "done" {
            break;
        }
        reference_results.push(response);
    }
    let cycles_of = |rs: &[Json]| {
        let mut cycles: Vec<(u64, u64, u64)> = rs
            .iter()
            .map(|r| {
                let point = r.get("point").expect("point");
                (
                    point.get("sets").and_then(Json::as_u64).expect("sets"),
                    point.get("ways").and_then(Json::as_u64).expect("ways"),
                    r.get("cycles").and_then(Json::as_u64).expect("cycles"),
                )
            })
            .collect();
        cycles.sort_unstable();
        cycles
    };
    assert_eq!(cycles_of(&results), cycles_of(&reference_results));

    let health = faulty.health_snapshot();
    assert!(
        health.degraded || health.warnings > 0 || health.retries > 0,
        "the injected faults were actually hit: {health:?}"
    );

    handle.stop();
    clean_handle.stop();
    join.join().expect("faulty server exits cleanly");
    clean_join.join().expect("clean server exits cleanly");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shutdown_request_drains_the_server() {
    let tier = SharedTier::new(None, IoPolicy::none());
    let (addr, _handle, join) = spawn_server(tier);

    let mut client = Client::connect(addr);
    let health = client.request(r#"{"req":"health"}"#);
    assert!(is_ok(&health), "{health:?}");
    assert_eq!(kind(&health), "health");
    assert!(health.get("result_cache_hit_rate").is_some());
    // The health line reports the server's live connection gauge — this
    // client is the only one.
    assert_eq!(health.get("connections").and_then(Json::as_u64), Some(1));

    let bye = client.request(r#"{"req":"shutdown"}"#);
    assert!(is_ok(&bye), "{bye:?}");
    assert_eq!(kind(&bye), "bye");
    join.join().expect("shutdown drains the accept loop");
}

#[test]
fn stopping_a_wildcard_bound_server_needs_no_clients() {
    // A server bound to 0.0.0.0 must be stoppable through its handle alone:
    // stop()'s wake-up connection rewrites the wildcard to loopback (dialing
    // a wildcard address is non-portable). A regression hangs this join.
    let tier = SharedTier::new(None, IoPolicy::none());
    let config = ServeConfig {
        addr: "0.0.0.0:0".to_string(),
        ..ServeConfig::default()
    };
    let (addr, handle, join) = spawn_server_with(service_config(), tier, config);
    assert!(addr.ip().is_unspecified(), "bound the wildcard: {addr}");
    handle.stop();
    join.join()
        .expect("wildcard-bound server stops without clients");
}

#[test]
fn request_quota_closes_the_connection_with_a_typed_error() {
    let tier = SharedTier::new(None, IoPolicy::none());
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        max_requests_per_conn: 2,
        ..ServeConfig::default()
    };
    let (addr, handle, join) = spawn_server_with(service_config(), tier.clone(), config);

    let mut client = Client::connect(addr);
    for id in [1, 2] {
        let pong = client.request(&format!(r#"{{"req":"ping","id":{id}}}"#));
        assert!(is_ok(&pong), "within quota: {pong:?}");
    }
    let refused = client.request(r#"{"req":"ping","id":3}"#);
    assert_eq!(refused.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        refused.get("code").and_then(Json::as_str),
        Some("quota_exhausted"),
        "{refused:?}"
    );
    assert_eq!(refused.get("id").and_then(Json::as_u64), Some(3));
    // After the typed error the server closes the connection.
    let mut line = String::new();
    let n = client
        .reader
        .read_line(&mut line)
        .expect("read after quota");
    assert_eq!(
        n, 0,
        "connection closed after quota exhaustion, got {line:?}"
    );
    // The refused request still counted as a request.
    assert_eq!(tier.health_snapshot().requests, 3);

    // A fresh connection gets a fresh quota.
    let mut again = Client::connect(addr);
    let pong = again.request(r#"{"req":"ping","id":9}"#);
    assert!(is_ok(&pong), "quota is per-connection: {pong:?}");

    handle.stop();
    join.join().expect("server thread exits cleanly");
}

/// A runner configuration slow enough per point that a cancel (or a
/// disconnect) sent after the first result line lands while most of the
/// space is still unevaluated — with one worker, the cursor stop is then
/// observable as strictly fewer evaluated points.
fn slow_sweep_config() -> RunnerConfig {
    RunnerConfig {
        warmup_instructions: 20_000,
        measure_instructions: 400_000,
        ..RunnerConfig::fast()
    }
}

fn single_worker_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        ..ServeConfig::default()
    }
}

#[test]
fn cancelling_a_sweep_stops_the_cursor_and_reports_what_ran() {
    let tier = SharedTier::new(None, IoPolicy::none());
    let (addr, handle, join) =
        spawn_server_with(slow_sweep_config(), tier.clone(), single_worker_config());
    let points = selective_sets_points();

    let mut client = Client::connect(addr);
    client.send(r#"{"req":"sweep","id":11,"app":"ammp","org":"selective_sets"}"#);
    let first = client.recv();
    assert!(is_ok(&first), "{first:?}");
    assert_eq!(kind(&first), "result");
    // Cancel naming the wrong id is answered mid-stream and changes nothing.
    client.send(r#"{"req":"cancel","id":999}"#);
    // Then cancel the sweep itself.
    client.send(r#"{"req":"cancel","id":11}"#);
    let mut results = 1;
    let cancelled = loop {
        let response = client.recv();
        match kind(&response) {
            "result" => results += 1,
            "cancelled" => break response,
            // The unmatched cancel's error line arrives interleaved.
            "" => {
                assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
                assert_eq!(response.get("id").and_then(Json::as_u64), Some(999));
            }
            other => panic!("unexpected response kind {other:?}: {response:?}"),
        }
    };
    assert!(is_ok(&cancelled), "{cancelled:?}");
    assert_eq!(cancelled.get("id").and_then(Json::as_u64), Some(11));
    let evaluated = cancelled
        .get("points")
        .and_then(Json::as_u64)
        .expect("cancelled line counts evaluated points") as usize;
    assert_eq!(
        cancelled.get("space_points").and_then(Json::as_u64),
        Some(points as u64)
    );
    // The acceptance criterion: a cancel after the first result provably
    // evaluates fewer points than the space offers.
    assert!(
        evaluated < points,
        "cancel stopped the cursor: {evaluated} of {points} points"
    );
    assert!(evaluated >= results, "every written result was evaluated");

    // The connection survives cancellation.
    let pong = client.request(r#"{"req":"ping","id":12}"#);
    assert!(is_ok(&pong), "{pong:?}");

    // The tier never simulated the skipped points: fewer sim misses than a
    // full sweep's trace + per-point count.
    let health = tier.health_snapshot();
    assert!(
        (health.misses as usize) < points + 1,
        "skipped points were never simulated: {health:?}"
    );

    handle.stop();
    join.join().expect("server thread exits cleanly");
}

#[test]
fn client_disconnect_mid_sweep_stops_the_cursor() {
    let tier = SharedTier::new(None, IoPolicy::none());
    let (addr, handle, join) =
        spawn_server_with(slow_sweep_config(), tier.clone(), single_worker_config());
    let points = selective_sets_points();

    {
        let mut client = Client::connect(addr);
        client.send(r#"{"req":"sweep","id":1,"app":"ammp","org":"selective_sets"}"#);
        let first = client.recv();
        assert_eq!(kind(&first), "result");
        // Dropping the client closes the socket mid-stream.
    }

    // The server notices the disconnect at its next poll, parks the cursor
    // and winds the connection down (observable on the live-connection
    // gauge, which the reaper keeps honest).
    let deadline = Instant::now() + Duration::from_secs(60);
    while handle.open_connections() > 0 {
        assert!(
            Instant::now() < deadline,
            "sweep wound down after the disconnect"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    let health = tier.health_snapshot();
    assert!(
        (health.misses as usize) < points + 1,
        "the cursor stopped before the space was exhausted: {health:?}"
    );
    assert!(
        (health.served as usize) < points + 1,
        "only written results count as served: {health:?}"
    );

    handle.stop();
    join.join().expect("server thread exits cleanly");
}

#[test]
fn dynamic_request_streams_resizes_and_matches_the_in_process_run() {
    let tier = SharedTier::new(None, IoPolicy::none());
    let (addr, handle, join) = spawn_server(tier);
    let mut client = Client::connect(addr);

    // Protocol errors first — all on a connection that stays usable.
    let bad = client.request(r#"{"req":"dynamic","id":1,"app":"ammp","interval":"soon"}"#);
    assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));
    assert!(bad
        .get("error")
        .and_then(Json::as_str)
        .expect("typed error")
        .contains("interval"));
    let zero = client.request(r#"{"req":"dynamic","id":2,"app":"ammp","interval":0}"#);
    assert_eq!(zero.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        zero.get("code").and_then(Json::as_str),
        Some("out_of_range"),
        "{zero:?}"
    );
    let stray = client.request(r#"{"req":"cancel","id":3}"#);
    assert!(stray
        .get("error")
        .and_then(Json::as_str)
        .expect("typed error")
        .contains("no sweep in flight"));

    // A miss-bound above the interval length can never be exceeded, so
    // every interval decision is a downsize until the size-bound floor —
    // resize lines deterministically stream before the done line.
    client.send(r#"{"req":"dynamic","id":4,"app":"gcc","interval":256,"miss_bound":512}"#);
    let mut resize_lines = Vec::new();
    let done = loop {
        let response = client.recv();
        assert!(is_ok(&response), "{response:?}");
        assert_eq!(response.get("id").and_then(Json::as_u64), Some(4));
        match kind(&response) {
            "resize" => resize_lines.push(response),
            "done" => break response,
            other => panic!("unexpected response kind {other:?}: {response:?}"),
        }
    };
    // `decisions` counts every streamed line over the whole run (the
    // downsizing to the floor happens during warm-up); `resizes` is the
    // measurement's measured-region count and may legitimately be smaller.
    assert!(
        !resize_lines.is_empty(),
        "the never-exceeded miss-bound downsizes: {done:?}"
    );
    assert_eq!(
        done.get("decisions").and_then(Json::as_u64),
        Some(resize_lines.len() as u64),
        "{done:?}"
    );
    let resizes = done.get("resizes").and_then(Json::as_u64).expect("resizes");
    // The run settles at the floor: the mean enabled size equals the
    // size-bound, proving the streamed decisions were applied.
    assert_eq!(
        done.get("mean_bytes").and_then(Json::as_u64),
        done.get("params")
            .and_then(|p| p.get("size_bound"))
            .and_then(Json::as_u64),
        "{done:?}"
    );
    let mut last_accesses = 0;
    for line in &resize_lines {
        let accesses = line
            .get("accesses")
            .and_then(Json::as_u64)
            .expect("interval boundary");
        assert!(accesses > last_accesses, "decisions arrive in order");
        last_accesses = accesses;
        let geometry = |p: &Json| {
            (
                p.get("sets").and_then(Json::as_u64).expect("sets"),
                p.get("ways").and_then(Json::as_u64).expect("ways"),
            )
        };
        let from = geometry(line.get("from").expect("from"));
        let to = geometry(line.get("to").expect("to"));
        assert_ne!(from, to, "a resize changes the geometry: {line:?}");
        assert_eq!(
            line.get("miss_bound").and_then(Json::as_u64),
            Some(512),
            "{line:?}"
        );
    }

    // The done line must match the in-process run bit-for-bit.
    let system = SystemConfig::base();
    let space = ConfigSpace::enumerate(
        ResizableCacheSide::Data.config_of(&system.hierarchy),
        Organization::SelectiveSets,
    )
    .expect("selective-sets applies to the base d-cache");
    let size_bound = space.min_bytes();
    assert_eq!(
        done.get("params")
            .and_then(|p| p.get("size_bound"))
            .and_then(Json::as_u64),
        Some(size_bound),
        "the default size-bound is the smallest offered capacity"
    );
    let params = DynamicParams::new(256, 512, size_bound).expect("valid params");
    let setup = RunSetup {
        dynamic: Some((ResizableCacheSide::Data, space, params)),
        d_tag_bits: ResizableCacheSide::Data
            .config_of(&system.hierarchy)
            .resizing_tag_bits(),
        ..RunSetup::default()
    };
    let reference = Runner::new(service_config());
    let expected = reference.run_dynamic(
        &spec::profile("gcc").expect("gcc is a spec profile"),
        &system,
        &setup,
    );
    assert_eq!(
        done.get("cycles").and_then(Json::as_u64),
        Some(expected.cycles),
        "served dynamic run diverged from the in-process run"
    );
    assert_eq!(resizes, expected.l1d_resizes);
    let ipc = done.get("ipc").and_then(Json::as_f64).expect("ipc");
    assert!(
        (ipc - expected.ipc).abs() < 1e-12,
        "{ipc} vs {}",
        expected.ipc
    );
    let mean_bytes = done
        .get("mean_bytes")
        .and_then(Json::as_f64)
        .expect("mean bytes");
    assert!(
        (mean_bytes - expected.l1d_mean_bytes).abs() < 1e-9,
        "{mean_bytes} vs {}",
        expected.l1d_mean_bytes
    );
    assert!(
        done.get("latency").is_some(),
        "done carries a latency block"
    );

    handle.stop();
    join.join().expect("server thread exits cleanly");
}

/// Re-exec target for [`multi_process_servers_share_one_store`]: inert in a
/// normal test run; with `RESCACHE_SWEEP_WORKER_PORT_FILE` set it becomes a
/// server process over the store the environment configures, publishing its
/// port through that file (stdout is useless for the handoff — libtest's
/// capture holds it until the test *ends*, and the worker serves until
/// shutdown) and serving until a client sends `shutdown`.
#[test]
fn multiproc_worker() {
    let Ok(port_file) = std::env::var("RESCACHE_SWEEP_WORKER_PORT_FILE") else {
        return;
    };
    let runner = Runner::with_store(service_config(), TraceStore::from_env());
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServeConfig::default()
    };
    let server = SweepServer::bind(runner, config).expect("bind worker server");
    let addr = server.local_addr().expect("local addr");
    // Write-then-rename so the parent never reads a half-written port.
    let tmp = format!("{port_file}.tmp");
    std::fs::write(&tmp, addr.port().to_string()).expect("write port file");
    std::fs::rename(&tmp, &port_file).expect("publish port file");
    server.serve().expect("worker serves until shutdown");
}

#[test]
fn multi_process_servers_share_one_store() {
    let dir = std::env::temp_dir().join(format!("rescache-serve-multiproc-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create shared store directory");

    // Two *processes* (not threads) serving over one RESCACHE_TRACE_DIR,
    // coordinated only through the store's entry locks.
    let exe = std::env::current_exe().expect("test binary path");
    let port_file = |i: usize| {
        std::env::temp_dir().join(format!(
            "rescache-multiproc-port-{}-{i}",
            std::process::id()
        ))
    };
    let spawn_worker = |i: usize| {
        std::fs::remove_file(port_file(i)).ok();
        std::process::Command::new(&exe)
            .args(["multiproc_worker", "--exact", "--test-threads=1"])
            .env("RESCACHE_SWEEP_WORKER_PORT_FILE", port_file(i))
            .env("RESCACHE_TRACE_DIR", &dir)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn worker process")
    };
    let mut workers = vec![spawn_worker(0), spawn_worker(1)];
    let mut addrs = Vec::new();
    for i in 0..workers.len() {
        let deadline = Instant::now() + Duration::from_secs(60);
        let port = loop {
            if let Ok(contents) = std::fs::read_to_string(port_file(i)) {
                break contents.trim().parse::<u16>().expect("valid port");
            }
            assert!(
                Instant::now() < deadline,
                "worker {i} published its port before the deadline"
            );
            std::thread::sleep(Duration::from_millis(20));
        };
        addrs.push(SocketAddr::from(([127, 0, 0, 1], port)));
    }

    let points = selective_sets_points();
    let mut per_process_cycles = Vec::new();
    let mut aggregate = (0u64, 0u64, 0u64); // (hits, coalesced, misses)
    for &addr in &addrs {
        let mut client = Client::connect(addr);
        client.send(r#"{"req":"sweep","id":1,"app":"ammp","org":"selective_sets"}"#);
        let mut cycles = Vec::new();
        loop {
            let response = client.recv();
            assert!(is_ok(&response), "{response:?}");
            match kind(&response) {
                "result" => {
                    let point = response.get("point").expect("point");
                    cycles.push((
                        point.get("sets").and_then(Json::as_u64).expect("sets"),
                        point.get("ways").and_then(Json::as_u64).expect("ways"),
                        response
                            .get("cycles")
                            .and_then(Json::as_u64)
                            .expect("cycles"),
                    ));
                }
                "done" => break,
                other => panic!("unexpected response kind {other:?}: {response:?}"),
            }
        }
        assert_eq!(cycles.len(), points);
        cycles.sort_unstable();
        per_process_cycles.push(cycles);

        let health = client.request(r#"{"req":"health"}"#);
        assert!(is_ok(&health), "{health:?}");
        let counter = |name: &str| health.get(name).and_then(Json::as_u64).unwrap_or(0);
        aggregate.0 += counter("hits");
        aggregate.1 += counter("coalesced");
        aggregate.2 += counter("misses");

        let bye = client.request(r#"{"req":"shutdown"}"#);
        assert_eq!(kind(&bye), "bye");
    }

    assert_eq!(
        per_process_cycles[0], per_process_cycles[1],
        "processes sharing the store agree bit-for-bit"
    );
    // The trace was generated by whichever process got there first and
    // *loaded* by the other: strictly fewer aggregate misses than two
    // isolated cold sweeps, and the sibling's load shows up as hits.
    let (hits, coalesced, misses) = aggregate;
    assert!(
        misses < 2 * (points as u64 + 1),
        "the store shared work across processes: {aggregate:?}"
    );
    assert!(
        hits + coalesced > 0,
        "cross-process reuse is visible in the health counters: {aggregate:?}"
    );

    for worker in &mut workers {
        let status = worker.wait().expect("worker exits");
        assert!(
            status.success(),
            "worker process exited cleanly: {status:?}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
