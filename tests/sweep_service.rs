//! Integration tests of the sweep service: the JSON-lines request server
//! over the shared store/memo tier.
//!
//! The contract under test:
//!
//! * **Coalescing** — N concurrent clients requesting the same cold point
//!   trigger exactly one simulation (and one trace generation); everything
//!   beyond those two misses is a `hit` or a `coalesced` in the tier's
//!   health counters. Likewise N clients running the same sweep share one
//!   simulation per unique point.
//! * **Robustness** — malformed, oversized and unserviceable request lines
//!   get typed `ok:false` responses on a connection that stays usable;
//!   never a panic, never a silent disconnect.
//! * **Degradation** — with injected disk faults the service keeps serving
//!   correct results while the store degrades to in-memory operation.
//! * **Shutdown** — a `shutdown` request drains the server cleanly.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

use rescache::prelude::*;
use rescache_core::experiment::{ServeConfig, SharedTier, SweepServer};
use rescache_core::json::Json;
use rescache_trace::{FaultInjector, FaultSpec, IoPolicy};

fn service_config() -> RunnerConfig {
    RunnerConfig {
        warmup_instructions: 4_000,
        measure_instructions: 12_000,
        ..RunnerConfig::fast()
    }
}

/// Binds a server over `tier` on an ephemeral port and serves it in the
/// background. Returns the address and the stop/join pair.
fn spawn_server(
    tier: SharedTier,
) -> (
    SocketAddr,
    rescache_core::experiment::ServerHandle,
    std::thread::JoinHandle<()>,
) {
    let runner = Runner::with_store(service_config(), TraceStore::with_tier(tier));
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServeConfig::default()
    };
    let server = SweepServer::bind(runner, config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let (handle, join) = server.spawn().expect("spawn server");
    (addr, handle, join)
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Self {
        let writer = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(writer.try_clone().expect("clone stream"));
        Self { reader, writer }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send request");
    }

    fn recv(&mut self) -> Json {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "server closed the connection unexpectedly");
        Json::parse(line.trim_end()).expect("response is valid JSON")
    }

    fn request(&mut self, line: &str) -> Json {
        self.send(line);
        self.recv()
    }
}

fn is_ok(response: &Json) -> bool {
    response.get("ok").and_then(Json::as_bool) == Some(true)
}

fn kind(response: &Json) -> &str {
    response.get("kind").and_then(Json::as_str).unwrap_or("")
}

/// The number of points selective-sets offers on the base d-cache — the
/// per-unique-point simulation bound the sweep assertions use.
fn selective_sets_points() -> usize {
    let system = SystemConfig::base();
    ConfigSpace::enumerate(system.hierarchy.l1d, Organization::SelectiveSets)
        .expect("selective-sets applies to the base d-cache")
        .len()
}

#[test]
fn concurrent_point_requests_coalesce_to_one_simulation() {
    let tier = SharedTier::new(None, IoPolicy::none());
    let (addr, handle, join) = spawn_server(tier.clone());

    // Every client asks for the same cold full-size point.
    let system = SystemConfig::base();
    let request = format!(
        r#"{{"req":"point","id":7,"app":"ammp","sets":{},"ways":{}}}"#,
        system.hierarchy.l1d.num_sets(),
        system.hierarchy.l1d.associativity
    );
    const CLIENTS: usize = 6;
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            let request = &request;
            scope.spawn(move || {
                let mut client = Client::connect(addr);
                let response = client.request(request);
                assert!(is_ok(&response), "{response:?}");
                assert_eq!(kind(&response), "result");
                assert_eq!(response.get("id").and_then(Json::as_u64), Some(7));
                assert!(response.get("cycles").and_then(Json::as_u64).unwrap() > 0);
            });
        }
    });

    let health = tier.health_snapshot();
    // One trace generation + one simulation, no matter how many clients
    // raced: the single-flight memos coalesce everything else.
    assert_eq!(health.misses, 2, "{health:?}");
    assert_eq!(
        health.hits + health.coalesced,
        (CLIENTS - 1) as u64,
        "every non-running client shared the one simulation: {health:?}"
    );
    assert_eq!(health.requests, CLIENTS as u64, "{health:?}");
    assert_eq!(health.served, CLIENTS as u64, "{health:?}");

    handle.stop();
    join.join().expect("server thread exits cleanly");
}

#[test]
fn overlapping_sweeps_share_one_simulation_per_unique_point() {
    let tier = SharedTier::new(None, IoPolicy::none());
    let (addr, handle, join) = spawn_server(tier.clone());
    let points = selective_sets_points();

    const CLIENTS: usize = 3;
    std::thread::scope(|scope| {
        for id in 0..CLIENTS {
            scope.spawn(move || {
                let mut client = Client::connect(addr);
                client.send(&format!(
                    r#"{{"req":"sweep","id":{id},"app":"ammp","org":"selective_sets","side":"data"}}"#
                ));
                let mut results = 0;
                loop {
                    let response = client.recv();
                    assert!(is_ok(&response), "{response:?}");
                    assert_eq!(response.get("id").and_then(Json::as_u64), Some(id as u64));
                    match kind(&response) {
                        "result" => results += 1,
                        "done" => {
                            assert_eq!(
                                response.get("points").and_then(Json::as_u64),
                                Some(results as u64)
                            );
                            let best = response.get("best").expect("done carries best point");
                            assert!(best.get("sets").and_then(Json::as_u64).is_some());
                            break;
                        }
                        other => panic!("unexpected response kind {other:?}: {response:?}"),
                    }
                }
                assert_eq!(results, points, "one line per sweep point");
            });
        }
    });

    let health = tier.health_snapshot();
    // Unique work across all clients: one trace generation plus one
    // simulation per point (the sweep's full-size baseline shares the
    // full point's memo key).
    assert_eq!(health.misses as usize, points + 1, "{health:?}");
    assert_eq!(health.requests, CLIENTS as u64, "{health:?}");
    assert_eq!(health.served, (CLIENTS * points) as u64, "{health:?}");
    let rate = health.result_cache_hit_rate().expect("lookups happened");
    assert!(rate > 0.5, "most lookups were shared: {health:?}");

    handle.stop();
    join.join().expect("server thread exits cleanly");
}

#[test]
fn malformed_and_oversized_lines_get_typed_errors_and_the_connection_survives() {
    let tier = SharedTier::new(None, IoPolicy::none());
    let (addr, handle, join) = spawn_server(tier);
    let mut client = Client::connect(addr);

    for (bad, expect) in [
        ("this is not json", "malformed request"),
        (r#"{"no_req":true}"#, "missing \"req\""),
        (r#"{"req":"frobnicate"}"#, "unknown request"),
        (r#"{"req":"point","id":1}"#, "missing \"app\""),
        (
            r#"{"req":"point","app":"no_such_app"}"#,
            "unknown application",
        ),
        (
            r#"{"req":"point","app":"ammp","sets":7,"ways":2}"#,
            "not offered",
        ),
        (
            r#"{"req":"point","app":"ammp","sets":64}"#,
            "both \"sets\" and \"ways\"",
        ),
        (
            r#"{"req":"sweep","app":"ammp","org":"bogus"}"#,
            "unknown org",
        ),
    ] {
        let response = client.request(bad);
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(false),
            "{bad} -> {response:?}"
        );
        let error = response
            .get("error")
            .and_then(Json::as_str)
            .expect("typed error");
        assert!(error.contains(expect), "{bad} -> {error}");
    }

    // An oversized line (beyond the 64 KiB cap) is answered and skipped
    // without buffering it or killing the connection.
    let mut huge = String::with_capacity(100_000);
    huge.push_str(r#"{"req":"point","pad":""#);
    huge.push_str(&"x".repeat(100_000 - huge.len() - 2));
    huge.push_str("\"}");
    let response = client.request(&huge);
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    assert!(response
        .get("error")
        .and_then(Json::as_str)
        .expect("typed error")
        .contains("exceeds"));

    // The same connection still serves real requests afterwards.
    let pong = client.request(r#"{"req":"ping","id":9}"#);
    assert!(is_ok(&pong), "{pong:?}");
    assert_eq!(kind(&pong), "pong");
    assert_eq!(pong.get("id").and_then(Json::as_u64), Some(9));

    handle.stop();
    join.join().expect("server thread exits cleanly");
}

#[test]
fn sweep_service_survives_disk_faults_and_degrades_gracefully() {
    // A store directory with aggressive write faults: persistence fails,
    // the tier degrades to in-memory operation mid-serve, and every client
    // still gets a full, correct sweep.
    let dir = std::env::temp_dir().join(format!("rescache-serve-faults-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let spec = FaultSpec::parse("seed=7,write=0.5,full=1.0").expect("valid fault spec");
    let faulty = SharedTier::new(
        Some(dir.clone()),
        IoPolicy::with_injector(std::sync::Arc::new(FaultInjector::seeded(spec))),
    );
    let (addr, handle, join) = spawn_server(faulty.clone());

    let mut client = Client::connect(addr);
    client.send(r#"{"req":"sweep","id":1,"app":"gcc","org":"selective_sets"}"#);
    let mut results: Vec<Json> = Vec::new();
    loop {
        let response = client.recv();
        assert!(
            is_ok(&response),
            "faults must not fail requests: {response:?}"
        );
        if kind(&response) == "done" {
            break;
        }
        results.push(response);
    }
    assert_eq!(results.len(), selective_sets_points());

    // Reference: the same sweep on a fault-free in-memory tier must produce
    // bit-identical cycle counts (faults may cost retries or degradation,
    // never results).
    let clean = SharedTier::new(None, IoPolicy::none());
    let (clean_addr, clean_handle, clean_join) = spawn_server(clean);
    let mut reference = Client::connect(clean_addr);
    reference.send(r#"{"req":"sweep","id":1,"app":"gcc","org":"selective_sets"}"#);
    let mut reference_results: Vec<Json> = Vec::new();
    loop {
        let response = reference.recv();
        if kind(&response) == "done" {
            break;
        }
        reference_results.push(response);
    }
    let cycles_of = |rs: &[Json]| {
        let mut cycles: Vec<(u64, u64, u64)> = rs
            .iter()
            .map(|r| {
                let point = r.get("point").expect("point");
                (
                    point.get("sets").and_then(Json::as_u64).expect("sets"),
                    point.get("ways").and_then(Json::as_u64).expect("ways"),
                    r.get("cycles").and_then(Json::as_u64).expect("cycles"),
                )
            })
            .collect();
        cycles.sort_unstable();
        cycles
    };
    assert_eq!(cycles_of(&results), cycles_of(&reference_results));

    let health = faulty.health_snapshot();
    assert!(
        health.degraded || health.warnings > 0 || health.retries > 0,
        "the injected faults were actually hit: {health:?}"
    );

    handle.stop();
    clean_handle.stop();
    join.join().expect("faulty server exits cleanly");
    clean_join.join().expect("clean server exits cleanly");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shutdown_request_drains_the_server() {
    let tier = SharedTier::new(None, IoPolicy::none());
    let (addr, _handle, join) = spawn_server(tier);

    let mut client = Client::connect(addr);
    let health = client.request(r#"{"req":"health"}"#);
    assert!(is_ok(&health), "{health:?}");
    assert_eq!(kind(&health), "health");
    assert!(health.get("result_cache_hit_rate").is_some());

    let bye = client.request(r#"{"req":"shutdown"}"#);
    assert!(is_ok(&bye), "{bye:?}");
    assert_eq!(kind(&bye), "bye");
    join.join().expect("shutdown drains the accept loop");
}
