//! Property-based tests of the organizations' configuration spaces.

use proptest::prelude::*;
use rescache::cache::CacheConfig;
use rescache::core::{CachePoint, ConfigSpace, Organization};

fn l1_config() -> impl Strategy<Value = CacheConfig> {
    (0u32..4)
        .prop_flat_map(|size_exp| {
            let size = 8 * 1024u64 << size_exp;
            // Keep each way at least one 1K subarray wide and the
            // associativity within the paper's 2..16-way range.
            let max_assoc_exp = (3 + size_exp).min(4);
            (Just(size), 1u32..=max_assoc_exp)
        })
        .prop_map(|(size, assoc_exp)| CacheConfig::l1_default(size, 1u32 << assoc_exp))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Offered sizes are strictly decreasing, start at the full capacity, and
    /// stay within the geometric limits of the cache.
    #[test]
    fn offered_sizes_are_sorted_and_bounded(config in l1_config(), org_idx in 0usize..3) {
        let org = Organization::ALL[org_idx];
        if let Ok(space) = ConfigSpace::enumerate(config, org) {
            let sizes = space.sizes_bytes();
            prop_assert_eq!(sizes[0], config.size_bytes);
            for pair in sizes.windows(2) {
                prop_assert!(pair[0] > pair[1], "sizes must strictly decrease: {:?}", sizes);
            }
            for point in space.points() {
                prop_assert!(point.ways >= 1 && point.ways <= config.associativity);
                prop_assert!(point.sets >= config.min_sets() && point.sets <= config.num_sets());
                prop_assert!(point.sets.is_power_of_two());
            }
        }
    }

    /// The hybrid organization offers a superset of the sizes offered by
    /// selective-ways and selective-sets (the basis of the paper's claim that
    /// it always at least matches them).
    #[test]
    fn hybrid_offers_a_superset(config in l1_config()) {
        let hybrid = ConfigSpace::enumerate(config, Organization::Hybrid);
        prop_assume!(hybrid.is_ok());
        let hybrid_sizes = hybrid.unwrap().sizes_bytes();
        for org in [Organization::SelectiveWays, Organization::SelectiveSets] {
            if let Ok(space) = ConfigSpace::enumerate(config, org) {
                for size in space.sizes_bytes() {
                    prop_assert!(hybrid_sizes.contains(&size));
                }
            }
        }
    }

    /// Selective-sets always preserves the full associativity; selective-ways
    /// always preserves the full set count.
    #[test]
    fn organizations_preserve_their_fixed_dimension(config in l1_config()) {
        if let Ok(space) = ConfigSpace::enumerate(config, Organization::SelectiveSets) {
            prop_assert!(space.points().iter().all(|p| p.ways == config.associativity));
        }
        if let Ok(space) = ConfigSpace::enumerate(config, Organization::SelectiveWays) {
            prop_assert!(space.points().iter().all(|p| p.sets == config.num_sets()));
        }
    }

    /// Applying any offered point to a real cache yields exactly the
    /// advertised enabled capacity, and applying the full-size point restores
    /// the original capacity.
    #[test]
    fn points_apply_cleanly(config in l1_config(), org_idx in 0usize..3) {
        let org = Organization::ALL[org_idx];
        if let Ok(space) = ConfigSpace::enumerate(config, org) {
            let mut cache = rescache::cache::Cache::new(config).unwrap();
            for point in space.points() {
                point.apply(&mut cache);
                prop_assert_eq!(cache.enabled_bytes(), point.bytes(config.block_bytes));
            }
            CachePoint::full(&config).apply(&mut cache);
            prop_assert_eq!(cache.enabled_bytes(), config.size_bytes);
        }
    }

    /// `index_of_at_least` always returns a point at least as large as the
    /// requested bound (or the smallest offered size if the bound is below
    /// everything).
    #[test]
    fn size_bound_lookup_is_conservative(config in l1_config(), bound in 512u64..64*1024) {
        if let Ok(space) = ConfigSpace::enumerate(config, Organization::Hybrid) {
            let idx = space.index_of_at_least(bound);
            let size = space.sizes_bytes()[idx];
            if bound <= config.size_bytes {
                prop_assert!(size >= bound.min(space.min_bytes()));
            }
        }
    }
}
