//! Property-based tests of the organizations' configuration spaces, driven by
//! the in-repo deterministic case runner (`rescache-testutil`).

use rescache::cache::CacheConfig;
use rescache::core::{CachePoint, ConfigSpace, Organization};
use rescache_testutil::{check_cases, TestRng};

fn l1_config(rng: &mut TestRng) -> CacheConfig {
    let size_exp = rng.below(4) as u32;
    let size = (8 * 1024u64) << size_exp;
    // Keep each way at least one 1K subarray wide and the associativity
    // within the paper's 2..16-way range.
    let max_assoc_exp = (3 + size_exp).min(4);
    let assoc_exp = rng.range_u32(1, max_assoc_exp + 1);
    CacheConfig::l1_default(size, 1u32 << assoc_exp)
}

/// Offered sizes are strictly decreasing, start at the full capacity, and
/// stay within the geometric limits of the cache.
#[test]
fn offered_sizes_are_sorted_and_bounded() {
    check_cases(128, |rng| {
        let config = l1_config(rng);
        let org = Organization::ALL[rng.below_usize(3)];
        if let Ok(space) = ConfigSpace::enumerate(config, org) {
            let sizes = space.sizes_bytes();
            assert_eq!(sizes[0], config.size_bytes);
            for pair in sizes.windows(2) {
                assert!(pair[0] > pair[1], "sizes must strictly decrease: {sizes:?}");
            }
            for point in space.points() {
                assert!(point.ways >= 1 && point.ways <= config.associativity);
                assert!(point.sets >= config.min_sets() && point.sets <= config.num_sets());
                assert!(point.sets.is_power_of_two());
            }
        }
    });
}

/// The hybrid organization offers a superset of the sizes offered by
/// selective-ways and selective-sets (the basis of the paper's claim that it
/// always at least matches them).
#[test]
fn hybrid_offers_a_superset() {
    check_cases(128, |rng| {
        let config = l1_config(rng);
        let hybrid = match ConfigSpace::enumerate(config, Organization::Hybrid) {
            Ok(space) => space,
            Err(_) => return,
        };
        let hybrid_sizes = hybrid.sizes_bytes();
        for org in [Organization::SelectiveWays, Organization::SelectiveSets] {
            if let Ok(space) = ConfigSpace::enumerate(config, org) {
                for size in space.sizes_bytes() {
                    assert!(hybrid_sizes.contains(&size));
                }
            }
        }
    });
}

/// Selective-sets always preserves the full associativity; selective-ways
/// always preserves the full set count.
#[test]
fn organizations_preserve_their_fixed_dimension() {
    check_cases(128, |rng| {
        let config = l1_config(rng);
        if let Ok(space) = ConfigSpace::enumerate(config, Organization::SelectiveSets) {
            assert!(space
                .points()
                .iter()
                .all(|p| p.ways == config.associativity));
        }
        if let Ok(space) = ConfigSpace::enumerate(config, Organization::SelectiveWays) {
            assert!(space.points().iter().all(|p| p.sets == config.num_sets()));
        }
    });
}

/// Applying any offered point to a real cache yields exactly the advertised
/// enabled capacity, and applying the full-size point restores the original
/// capacity.
#[test]
fn points_apply_cleanly() {
    check_cases(128, |rng| {
        let config = l1_config(rng);
        let org = Organization::ALL[rng.below_usize(3)];
        if let Ok(space) = ConfigSpace::enumerate(config, org) {
            let mut cache = rescache::cache::Cache::new(config).unwrap();
            for point in space.points() {
                point.apply(&mut cache);
                assert_eq!(cache.enabled_bytes(), point.bytes(config.block_bytes));
            }
            CachePoint::full(&config).apply(&mut cache);
            assert_eq!(cache.enabled_bytes(), config.size_bytes);
        }
    });
}

/// `index_of_at_least` always returns a point at least as large as the
/// requested bound (or the smallest offered size if the bound is below
/// everything).
#[test]
fn size_bound_lookup_is_conservative() {
    check_cases(128, |rng| {
        let config = l1_config(rng);
        let bound = rng.range(512, 64 * 1024);
        if let Ok(space) = ConfigSpace::enumerate(config, Organization::Hybrid) {
            let idx = space.index_of_at_least(bound);
            let size = space.sizes_bytes()[idx];
            if bound <= config.size_bytes {
                assert!(size >= bound.min(space.min_bytes()));
            }
        }
    });
}
