//! Integration tests for the paper's headline claims, run at a reduced scale
//! (the full-scale numbers are produced by `cargo bench` and recorded in
//! EXPERIMENTS.md).

use rescache::core::experiment::{
    dual_resizing, organization_vs_associativity, Runner, RunnerConfig,
};
use rescache::prelude::*;
use rescache::trace::{AppProfile, TraceFormat};

/// The headline claims run under the default trace format (v2);
/// [`v1_trace_format_reproduces_the_headline_organization_claim`] keeps a
/// v1 differential alive.
fn test_config() -> RunnerConfig {
    RunnerConfig {
        warmup_instructions: 8_000,
        measure_instructions: 40_000,
        trace_seed: 42,
        dynamic_interval: 1_024,
        ..RunnerConfig::fast()
    }
}

fn test_runner() -> Runner {
    Runner::new(test_config())
}

fn small_ws_apps() -> Vec<AppProfile> {
    vec![spec::ammp(), spec::applu(), spec::m88ksim()]
}

/// Claim 1 (organization): for low-associativity caches, selective-sets
/// offers better energy-delay than selective-ways because it reaches smaller
/// sizes and keeps associativity.
#[test]
fn selective_sets_beats_selective_ways_at_two_way() {
    let runner = test_runner();
    let apps = small_ws_apps();
    let points = organization_vs_associativity(
        &runner,
        &apps,
        &[2],
        &[Organization::SelectiveWays, Organization::SelectiveSets],
        ResizableCacheSide::Data,
    )
    .unwrap();
    let ways = points
        .iter()
        .find(|p| p.organization == Organization::SelectiveWays)
        .unwrap();
    let sets = points
        .iter()
        .find(|p| p.organization == Organization::SelectiveSets)
        .unwrap();
    assert!(
        sets.mean_edp_reduction > ways.mean_edp_reduction + 1.0,
        "selective-sets ({:.1} %) should clearly beat selective-ways ({:.1} %) at 2-way",
        sets.mean_edp_reduction,
        ways.mean_edp_reduction
    );
}

/// Claim 1 (organization, other end): for highly associative caches,
/// selective-ways offers the better spectrum and wins.
#[test]
fn selective_ways_beats_selective_sets_at_sixteen_way() {
    let runner = test_runner();
    let apps = small_ws_apps();
    let points = organization_vs_associativity(
        &runner,
        &apps,
        &[16],
        &[Organization::SelectiveWays, Organization::SelectiveSets],
        ResizableCacheSide::Data,
    )
    .unwrap();
    let ways = points
        .iter()
        .find(|p| p.organization == Organization::SelectiveWays)
        .unwrap();
    let sets = points
        .iter()
        .find(|p| p.organization == Organization::SelectiveSets)
        .unwrap();
    assert!(
        ways.mean_edp_reduction > sets.mean_edp_reduction,
        "selective-ways ({:.1} %) should beat selective-sets ({:.1} %) at 16-way",
        ways.mean_edp_reduction,
        sets.mean_edp_reduction
    );
}

/// Claim 2 (hybrid): the hybrid organization at least matches the better of
/// the two single organizations.
#[test]
fn hybrid_matches_or_beats_both_organizations() {
    let runner = test_runner();
    let apps = vec![spec::ammp(), spec::ijpeg(), spec::compress()];
    for assoc in [2u32, 4] {
        let points = organization_vs_associativity(
            &runner,
            &apps,
            &[assoc],
            &Organization::ALL,
            ResizableCacheSide::Data,
        )
        .unwrap();
        let get = |org: Organization| {
            points
                .iter()
                .find(|p| p.organization == org)
                .map(|p| p.mean_edp_reduction)
                .unwrap()
        };
        let hybrid = get(Organization::Hybrid);
        let best_single = get(Organization::SelectiveWays).max(get(Organization::SelectiveSets));
        assert!(
            hybrid >= best_single - 1.0,
            "{assoc}-way: hybrid ({hybrid:.1} %) must not lose to the best single organization ({best_single:.1} %)"
        );
    }
}

/// Claim 3 (dual resizing): resizing both L1 caches together saves roughly
/// the sum of the individual savings, and clearly more than either alone.
#[test]
fn dual_resizing_is_additive() {
    let runner = test_runner();
    let apps = small_ws_apps();
    let rows = dual_resizing(
        &runner,
        &apps,
        &SystemConfig::base(),
        Organization::SelectiveSets,
    )
    .unwrap();
    for (outcome, row) in &rows {
        assert!(
            row.both_edp_reduction
                >= row.d_alone_edp_reduction.max(row.i_alone_edp_reduction) - 1.0,
            "{}: both ({:.1} %) should beat either alone",
            outcome.app,
            row.both_edp_reduction
        );
        let stacked = row.stacked_edp_reduction();
        assert!(
            (row.both_edp_reduction - stacked).abs() <= 7.0,
            "{}: combined saving {:.1} % should track the stacked sum {:.1} %",
            outcome.app,
            row.both_edp_reduction,
            stacked
        );
    }
    // Small-working-set applications should already show a sizeable combined
    // saving even at this reduced simulation scale.
    let mean_both: f64 =
        rows.iter().map(|(_, r)| r.both_edp_reduction).sum::<f64>() / rows.len() as f64;
    assert!(
        mean_both > 15.0,
        "combined d+i resizing for small-working-set apps should save well over 15 %, got {mean_both:.1} %"
    );
}

/// Claim 4 (performance guardrail): the minimum-EDP configurations come at a
/// small performance cost (the paper reports <6 % for every experiment).
#[test]
fn best_static_points_have_bounded_slowdown() {
    let runner = test_runner();
    for app in [spec::ammp(), spec::ijpeg(), spec::vpr()] {
        let outcome = runner
            .static_best(
                &app,
                &SystemConfig::base(),
                Organization::SelectiveSets,
                ResizableCacheSide::Data,
            )
            .unwrap();
        assert!(
            outcome.best.slowdown_percent < 8.0,
            "{}: the chosen static point should not slow execution by more than a few percent, got {:.1} %",
            outcome.app,
            outcome.best.slowdown_percent
        );
    }
}

/// The v1 differential kept alive: the paper's organization claim must hold
/// under the legacy trace format too — the claims are properties of the
/// modelled machine, not of one sampler's bit stream — and the v1 and v2
/// runs must really be distinct bit streams (different traces, segregated
/// memo keys) inside one runner.
#[test]
fn v1_trace_format_reproduces_the_headline_organization_claim() {
    let runner = Runner::new(test_config().with_trace_format(TraceFormat::V1));
    let apps = small_ws_apps();
    let points = organization_vs_associativity(
        &runner,
        &apps,
        &[2],
        &[Organization::SelectiveWays, Organization::SelectiveSets],
        ResizableCacheSide::Data,
    )
    .unwrap();
    let ways = points
        .iter()
        .find(|p| p.organization == Organization::SelectiveWays)
        .unwrap();
    let sets = points
        .iter()
        .find(|p| p.organization == Organization::SelectiveSets)
        .unwrap();
    assert!(
        sets.mean_edp_reduction > ways.mean_edp_reduction + 1.0,
        "v1: selective-sets ({:.1} %) should clearly beat selective-ways ({:.1} %) at 2-way",
        sets.mean_edp_reduction,
        ways.mean_edp_reduction
    );

    // And the two formats really simulate different traces: the same app
    // under v1 vs v2 yields different cycle counts through one shared
    // runner facility (same profile, seed and lengths).
    let v1_runner = Runner::new(test_config().with_trace_format(TraceFormat::V1));
    let v2_runner = Runner::new(test_config());
    let (w1, m1) = v1_runner.trace(&spec::ammp());
    let (w2, m2) = v2_runner.trace(&spec::ammp());
    assert_eq!(w1.len(), w2.len());
    assert_ne!(
        (w1.records(), m1.records()),
        (w2.records(), m2.records()),
        "v1 and v2 must be distinct bit streams"
    );
}

/// End-to-end determinism: the whole pipeline (trace, simulation, energy,
/// search) produces identical results for identical inputs.
#[test]
fn experiment_pipeline_is_deterministic() {
    let runner = test_runner();
    let a = runner
        .static_best(
            &spec::gcc(),
            &SystemConfig::base(),
            Organization::SelectiveSets,
            ResizableCacheSide::Data,
        )
        .unwrap();
    let b = runner
        .static_best(
            &spec::gcc(),
            &SystemConfig::base(),
            Organization::SelectiveSets,
            ResizableCacheSide::Data,
        )
        .unwrap();
    assert_eq!(a.best.point, b.best.point);
    assert_eq!(a.base.cycles, b.base.cycles);
    assert_eq!(a.best.measurement.cycles, b.best.measurement.cycles);
    assert!((a.best.edp_reduction_percent - b.best.edp_reduction_percent).abs() < 1e-12);
}
