//! Integration tests of the resizing strategies across crates: the dynamic
//! controller really resizes the cache mid-simulation, tracks working-set
//! phases, and respects its bounds.

use rescache::core::experiment::{RunSetup, Runner, RunnerConfig};
use rescache::prelude::*;

fn runner() -> Runner {
    Runner::new(RunnerConfig {
        warmup_instructions: 10_000,
        measure_instructions: 60_000,
        trace_seed: 42,
        dynamic_interval: 1_024,
        ..RunnerConfig::fast()
    })
}

/// The dynamic controller attached to a full simulation downsizes a cache
/// that is far too large for the application, and the measured mean enabled
/// size reflects it.
#[test]
fn dynamic_controller_downsizes_an_oversized_cache() {
    let r = runner();
    let system = SystemConfig::base();
    let app = spec::m88ksim(); // ~2.5 KiB working set in a 32 KiB cache
    let space = ConfigSpace::enumerate(system.hierarchy.l1d, Organization::SelectiveSets).unwrap();
    let (warm, measure) = r.trace(&app);
    let setup = RunSetup {
        dynamic: Some((
            ResizableCacheSide::Data,
            space,
            DynamicParams::new(1_024, 40, 4 * 1024).unwrap(),
        )),
        d_tag_bits: 4,
        ..RunSetup::default()
    };
    let resized = r.run(&warm, &measure, &system, &setup);
    let base = r.baseline(&warm, &measure, &system);
    assert!(
        resized.l1d_mean_bytes < 12.0 * 1024.0,
        "the controller should ride well below the full 32 KiB, got {:.1} KiB",
        resized.l1d_mean_bytes / 1024.0
    );
    assert!(
        resized.breakdown.l1d_pj < base.breakdown.l1d_pj * 0.6,
        "d-cache energy should drop accordingly"
    );
    let slowdown = resized.cycles as f64 / base.cycles as f64;
    assert!(
        slowdown < 1.08,
        "m88ksim fits comfortably, so the slowdown must stay small (got {slowdown:.3})"
    );
}

/// The i-cache controller leaves the d-cache untouched and vice versa.
#[test]
fn controllers_only_touch_their_own_cache() {
    let r = runner();
    let system = SystemConfig::base();
    let app = spec::swim(); // tiny instruction footprint
    let space = ConfigSpace::enumerate(system.hierarchy.l1i, Organization::SelectiveSets).unwrap();
    let (warm, measure) = r.trace(&app);
    let setup = RunSetup {
        dynamic: Some((
            ResizableCacheSide::Instruction,
            space,
            DynamicParams::new(1_024, 30, 2 * 1024).unwrap(),
        )),
        i_tag_bits: 4,
        ..RunSetup::default()
    };
    let m = r.run(&warm, &measure, &system, &setup);
    assert!(m.l1i_mean_bytes < 16.0 * 1024.0, "i-cache should shrink");
    assert_eq!(
        m.l1d_mean_bytes,
        32.0 * 1024.0,
        "d-cache must stay at full size"
    );
    assert_eq!(m.l1d_resizes, 0);
}

/// Static resizing of both caches simultaneously composes: the measurement
/// reflects both masks and neither interferes with the other.
#[test]
fn static_points_on_both_sides_compose() {
    let r = runner();
    let system = SystemConfig::base();
    let (warm, measure) = r.trace(&spec::ammp());
    let setup = RunSetup {
        d_static: Some(CachePoint { sets: 64, ways: 2 }), // 4 KiB
        i_static: Some(CachePoint { sets: 128, ways: 2 }), // 8 KiB
        d_tag_bits: 4,
        i_tag_bits: 4,
        ..RunSetup::default()
    };
    let m = r.run(&warm, &measure, &system, &setup);
    assert_eq!(m.l1d_mean_bytes, 4.0 * 1024.0);
    assert_eq!(m.l1i_mean_bytes, 8.0 * 1024.0);
    let base = r.baseline(&warm, &measure, &system);
    assert!(m.breakdown.l1d_pj < base.breakdown.l1d_pj);
    assert!(m.breakdown.l1i_pj < base.breakdown.l1i_pj);
}

/// The miss-ratio controller's size-bound is honoured end to end: the cache
/// never shrinks below it no matter how quiet the workload is.
#[test]
fn size_bound_is_never_violated() {
    let r = runner();
    let system = SystemConfig::base();
    let app = spec::compress();
    let space = ConfigSpace::enumerate(system.hierarchy.l1d, Organization::SelectiveSets).unwrap();
    let (warm, measure) = r.trace(&app);
    let setup = RunSetup {
        dynamic: Some((
            ResizableCacheSide::Data,
            space,
            DynamicParams::new(1_024, 10_000, 8 * 1024).unwrap(),
        )),
        d_tag_bits: 4,
        ..RunSetup::default()
    };
    let m = r.run(&warm, &measure, &system, &setup);
    assert!(
        m.l1d_mean_bytes >= 8.0 * 1024.0 - 1.0,
        "mean enabled size {:.1} KiB dipped below the 8 KiB size-bound",
        m.l1d_mean_bytes / 1024.0
    );
}

/// Selective-ways and selective-sets static resizing reach the same capacity
/// through different geometries, and both register in the energy model.
#[test]
fn ways_and_sets_reach_the_same_capacity_differently() {
    let r = runner();
    let system = SystemConfig::with_l1(32 * 1024, 4);
    let (warm, measure) = r.trace(&spec::ijpeg());
    let ways_setup = RunSetup {
        d_static: Some(CachePoint { sets: 256, ways: 2 }), // 16 KiB as 2-way
        ..RunSetup::default()
    };
    let sets_setup = RunSetup {
        d_static: Some(CachePoint { sets: 128, ways: 4 }), // 16 KiB as 4-way
        d_tag_bits: 3,
        ..RunSetup::default()
    };
    let ways = r.run(&warm, &measure, &system, &ways_setup);
    let sets = r.run(&warm, &measure, &system, &sets_setup);
    assert_eq!(ways.l1d_mean_bytes, 16.0 * 1024.0);
    assert_eq!(sets.l1d_mean_bytes, 16.0 * 1024.0);
    // ijpeg has conflict structure: keeping 4 ways at 16 KiB must not miss
    // more than the 2-way variant.
    assert!(sets.l1d_miss_ratio <= ways.l1d_miss_ratio + 1e-9);
}
