//! Bit-identity pinning for the latency-domain refactor.
//!
//! The delayed-hit classification, the MSHR issue timestamps, the fused
//! `lookup_retire` pass and the LRU-MAD machinery were all added under the
//! rule that **with the default policy (LRU) and the default objective
//! (EDP) nothing observable changes**. These goldens were captured on the
//! pre-refactor tree (warmup 6k / measure 18k, seed 42, interval 256) for
//! four registry workloads on both engines, across a base run, a statically
//! shrunk run and a dynamically controlled run; any drift in cycles, energy
//! bits, miss-ratio bits, mean-size bits or resize counts fails here.
//!
//! The bit patterns are `f64::to_bits()` of the respective measurement
//! fields, so equality is exact — not epsilon-close.

use rescache::prelude::*;
use rescache_core::experiment::RunSetup;
use rescache_trace::WorkloadRegistry;

struct Golden {
    base_cycles: u64,
    base_energy_bits: u64,
    base_l1d_miss_bits: u64,
    base_l1i_miss_bits: u64,
    small_cycles: u64,
    small_energy_bits: u64,
    small_l1d_miss_bits: u64,
    dyn_cycles: u64,
    dyn_energy_bits: u64,
    dyn_mean_bytes_bits: u64,
    dyn_resizes: u64,
}

fn fast_config() -> RunnerConfig {
    RunnerConfig {
        warmup_instructions: 6_000,
        measure_instructions: 18_000,
        trace_seed: 42,
        dynamic_interval: 256,
        ..RunnerConfig::fast()
    }
}

#[rustfmt::skip]
fn goldens() -> Vec<(&'static str, &'static str, Golden)> {
    vec![
        ("nominal", "InOrderBlocking", Golden { base_cycles: 48628, base_energy_bits: 0x418374f15eafe148, base_l1d_miss_bits: 0x3faa7efe1217c08c, base_l1i_miss_bits: 0x3f7d208a5a912e32, small_cycles: 71976, small_energy_bits: 0x41865108ad53f0a3, small_l1d_miss_bits: 0x3fd765ff3a6fe69e, dyn_cycles: 65034, dyn_energy_bits: 0x4185be9815a48915, dyn_mean_bytes_bits: 0x40cd5b9f1ae1c61f, dyn_resizes: 21 }),
        ("nominal", "OutOfOrderNonBlocking", Golden { base_cycles: 24494, base_energy_bits: 0x417d931c7fef1eb9, base_l1d_miss_bits: 0x3faa7efe1217c08c, base_l1i_miss_bits: 0x3f7d208a5a912e32, small_cycles: 26898, small_energy_bits: 0x417b339c239da3d7, small_l1d_miss_bits: 0x3fd765ff3a6fe69e, dyn_cycles: 26112, dyn_energy_bits: 0x417c6f1f9af62d47, dyn_mean_bytes_bits: 0x40cd5b9f1ae1c61f, dyn_resizes: 21 }),
        ("phase_flip", "InOrderBlocking", Golden { base_cycles: 46115, base_energy_bits: 0x4182fad00e9be147, base_l1d_miss_bits: 0x3fa87b5740e3b4c7, base_l1i_miss_bits: 0x3f7d208a5a912e32, small_cycles: 51350, small_energy_bits: 0x4181ba5f6d14051f, small_l1d_miss_bits: 0x3fbdf21b725c8171, dyn_cycles: 59539, dyn_energy_bits: 0x4183e2b90bdf6833, dyn_mean_bytes_bits: 0x40bd37101865a790, dyn_resizes: 23 }),
        ("phase_flip", "OutOfOrderNonBlocking", Golden { base_cycles: 23579, base_energy_bits: 0x417d3d2727753333, base_l1d_miss_bits: 0x3fa87b5740e3b4c7, base_l1i_miss_bits: 0x3f7d208a5a912e32, small_cycles: 24058, small_energy_bits: 0x4178e6ff5798ae15, small_l1d_miss_bits: 0x3fbdf21b725c8171, dyn_cycles: 25058, dyn_energy_bits: 0x417a6fc026e2b2b9, dyn_mean_bytes_bits: 0x40bd37101865a790, dyn_resizes: 23 }),
        ("pointer_chase", "InOrderBlocking", Golden { base_cycles: 146732, base_energy_bits: 0x4194aa5c02b3eb84, base_l1d_miss_bits: 0x3fe0e0e9d4a6f37e, base_l1i_miss_bits: 0x3f6d208a5a912e32, small_cycles: 187365, small_energy_bits: 0x4197588ee7cb851f, small_l1d_miss_bits: 0x3fedbd5e4027a1e0, dyn_cycles: 146732, dyn_energy_bits: 0x4194b1a362550000, dyn_mean_bytes_bits: 0x40e0000000000000, dyn_resizes: 0 }),
        ("pointer_chase", "OutOfOrderNonBlocking", Golden { base_cycles: 80984, base_energy_bits: 0x418c9c236190cccd, base_l1d_miss_bits: 0x3fe0e0e9d4a6f37e, base_l1i_miss_bits: 0x3f6d208a5a912e32, small_cycles: 98652, small_energy_bits: 0x418d8a1535ab851f, small_l1d_miss_bits: 0x3fedbd5e4027a1e0, dyn_cycles: 80984, dyn_energy_bits: 0x418caab220d2f5c3, dyn_mean_bytes_bits: 0x40e0000000000000, dyn_resizes: 0 }),
        ("mshr_burst", "InOrderBlocking", Golden { base_cycles: 536108, base_energy_bits: 0x41ae5796c49363d7, base_l1d_miss_bits: 0x3fec8e5fd431488e, base_l1i_miss_bits: 0x3f7d208a5a912e32, small_cycles: 546908, small_energy_bits: 0x41adfad2f4343852, small_l1d_miss_bits: 0x3fef97f50c522398, dyn_cycles: 536108, dyn_energy_bits: 0x41ae5b941f9e3ae2, dyn_mean_bytes_bits: 0x40e0000000000000, dyn_resizes: 0 }),
        ("mshr_burst", "OutOfOrderNonBlocking", Golden { base_cycles: 57753, base_energy_bits: 0x418cd0d5abe728f6, base_l1d_miss_bits: 0x3fec8e5fd431488e, base_l1i_miss_bits: 0x3f7d208a5a912e32, small_cycles: 58399, small_energy_bits: 0x418977882641851f, small_l1d_miss_bits: 0x3fef97f50c522398, dyn_cycles: 57753, dyn_energy_bits: 0x418ce0cb1812851f, dyn_mean_bytes_bits: 0x40e0000000000000, dyn_resizes: 0 }),
    ]
}

fn system_for(engine: &str) -> SystemConfig {
    match engine {
        "InOrderBlocking" => SystemConfig::in_order(),
        "OutOfOrderNonBlocking" => SystemConfig::base(),
        other => panic!("unknown engine tag {other}"),
    }
}

#[test]
fn defaults_are_bit_identical_to_the_pre_refactor_tree() {
    let registry = WorkloadRegistry::builtin();
    let runner = Runner::new(fast_config());

    for (workload, engine, golden) in goldens() {
        let profile = registry
            .get(workload)
            .expect("registered workload")
            .profile();
        let system = system_for(engine);
        assert_eq!(
            format!("{:?}", system.cpu.engine),
            engine,
            "system/engine tag mismatch in the golden table"
        );
        let (warm, measure) = runner.trace(&profile);
        let label = format!("{workload}/{engine}");

        // Base run: the unmodified hierarchy.
        let base = runner.run(&warm, &measure, &system, &RunSetup::default());
        assert_eq!(base.cycles, golden.base_cycles, "{label}: base cycles");
        assert_eq!(
            base.energy_pj.to_bits(),
            golden.base_energy_bits,
            "{label}: base energy bits"
        );
        assert_eq!(
            base.l1d_miss_ratio.to_bits(),
            golden.base_l1d_miss_bits,
            "{label}: base l1d miss bits"
        );
        assert_eq!(
            base.l1i_miss_ratio.to_bits(),
            golden.base_l1i_miss_bits,
            "{label}: base l1i miss bits"
        );

        // Statically shrunk d-cache (64 sets x 2 ways, 4 extra tag bits).
        let small_setup = RunSetup {
            d_static: Some(CachePoint { sets: 64, ways: 2 }),
            d_tag_bits: 4,
            ..RunSetup::default()
        };
        let small = runner.run(&warm, &measure, &system, &small_setup);
        assert_eq!(small.cycles, golden.small_cycles, "{label}: small cycles");
        assert_eq!(
            small.energy_pj.to_bits(),
            golden.small_energy_bits,
            "{label}: small energy bits"
        );
        assert_eq!(
            small.l1d_miss_ratio.to_bits(),
            golden.small_l1d_miss_bits,
            "{label}: small l1d miss bits"
        );

        // Dynamically controlled run over the selective-sets space.
        let space = ConfigSpace::enumerate(
            ResizableCacheSide::Data.config_of(&system.hierarchy),
            Organization::SelectiveSets,
        )
        .expect("selective-sets applies to the base d-cache");
        let params = DynamicParams::new(256, 64, space.min_bytes()).expect("valid params");
        let dyn_setup = RunSetup {
            dynamic: Some((ResizableCacheSide::Data, space, params)),
            d_tag_bits: 4,
            ..RunSetup::default()
        };
        let dynamic = runner.run(&warm, &measure, &system, &dyn_setup);
        assert_eq!(dynamic.cycles, golden.dyn_cycles, "{label}: dynamic cycles");
        assert_eq!(
            dynamic.energy_pj.to_bits(),
            golden.dyn_energy_bits,
            "{label}: dynamic energy bits"
        );
        assert_eq!(
            dynamic.l1d_mean_bytes.to_bits(),
            golden.dyn_mean_bytes_bits,
            "{label}: dynamic mean-size bits"
        );
        assert_eq!(
            dynamic.l1d_resizes, golden.dyn_resizes,
            "{label}: dynamic resize count"
        );
    }
}
