//! Property-based tests of the resizable cache's invariants, driven by the
//! in-repo deterministic case runner (`rescache-testutil`).

use rescache::cache::{Cache, CacheConfig};
use rescache_testutil::{check_cases, TestRng};

/// Draws a valid L1-style cache configuration: 4K..32K with an associativity
/// that keeps each way at least one 1K subarray wide.
fn cache_config(rng: &mut TestRng) -> CacheConfig {
    let size_exp = rng.below(4) as u32;
    let size = (4 * 1024u64) << size_exp;
    let max_assoc_exp = 2 + size_exp; // way size >= 1 KiB
    let assoc_exp = rng.range_u32(0, max_assoc_exp + 1);
    CacheConfig::l1_default(size, 1u32 << assoc_exp)
}

/// Draws a sequence of block-aligned addresses in a compact region (so sets
/// actually collide).
fn addresses(rng: &mut TestRng) -> Vec<u64> {
    let len = rng.range_usize(1, 200);
    rng.vec_of(len, |r| r.below(4096) * 32)
}

/// A filled block is resident until something evicts it, and an access to it
/// immediately after the fill always hits.
#[test]
fn fill_then_access_hits() {
    check_cases(64, |rng| {
        let config = cache_config(rng);
        let addr = rng.below(1_000_000);
        let mut cache = Cache::new(config).unwrap();
        cache.fill(addr, false);
        assert!(cache.access_read(addr).hit);
    });
}

/// The number of resident blocks never exceeds the enabled capacity,
/// regardless of the access pattern or the resizing sequence.
#[test]
fn occupancy_never_exceeds_enabled_capacity() {
    check_cases(64, |rng| {
        let config = cache_config(rng);
        let addrs = addresses(rng);
        let shrink_ways = rng.bool();
        let mut cache = Cache::new(config).unwrap();
        for (i, addr) in addrs.iter().enumerate() {
            if !cache.access_read(*addr).hit {
                cache.fill(*addr, i % 3 == 0);
            }
            // Occasionally resize mid-stream.
            if i == addrs.len() / 2 {
                if shrink_ways && config.associativity > 1 {
                    cache.set_enabled_ways(config.associativity / 2);
                } else if config.min_sets() < config.num_sets() {
                    cache.set_enabled_sets(config.num_sets() / 2);
                }
            }
            let capacity_blocks = cache.enabled_bytes() / config.block_bytes;
            assert!(cache.resident_blocks() <= capacity_blocks);
        }
    });
}

/// Every resident block is found again when probed: resizing never leaves a
/// block behind in a frame the index function can no longer reach without the
/// cache knowing about it (the flush rules of the paper).
#[test]
fn resize_preserves_reachability() {
    check_cases(64, |rng| {
        let config = cache_config(rng);
        let addrs = addresses(rng);
        let downsize_first = rng.bool();
        let mut cache = Cache::new(config).unwrap();
        for addr in &addrs {
            cache.fill(*addr, false);
        }
        if config.min_sets() < config.num_sets() {
            if downsize_first {
                cache.set_enabled_sets(config.min_sets());
                cache.set_enabled_sets(config.num_sets());
            } else {
                cache.set_enabled_sets(config.num_sets() / 2);
            }
        }
        // Whatever survived must be reachable: contains() and a subsequent
        // read access must agree.
        for addr in &addrs {
            let resident = cache.contains(*addr);
            let hit = cache.access_read(*addr).hit;
            assert_eq!(resident, hit);
        }
    });
}

/// Dirty data is never silently dropped: every dirty fill is eventually
/// accounted for either as a replacement writeback, a resize writeback, a
/// flush, or remains resident (and dirty) in the cache.
#[test]
fn dirty_blocks_are_conserved() {
    check_cases(64, |rng| {
        let config = cache_config(rng);
        let addrs = addresses(rng);
        let mut cache = Cache::new(config).unwrap();
        let mut dirty_fills = 0u64;
        for addr in &addrs {
            if !cache.access_write(*addr).hit {
                cache.fill(*addr, true);
                dirty_fills += 1;
            }
        }
        if config.min_sets() < config.num_sets() {
            cache.set_enabled_sets(config.min_sets());
        }
        let flushed_now = cache.flush_all();
        let written_back = cache.stats().writebacks + cache.stats().resize_writebacks + flushed_now;
        // Dirty blocks written back can never exceed the dirty blocks created.
        assert!(written_back <= dirty_fills);
    });
}

/// The offered geometry accessors are consistent: enabled bytes always equals
/// enabled_sets x enabled_ways x block size.
#[test]
fn enabled_bytes_matches_masks() {
    check_cases(64, |rng| {
        let config = cache_config(rng);
        let halve = rng.bool();
        let mut cache = Cache::new(config).unwrap();
        if halve && config.min_sets() < config.num_sets() {
            cache.set_enabled_sets(config.num_sets() / 2);
        }
        assert_eq!(
            cache.enabled_bytes(),
            cache.enabled_sets() * u64::from(cache.enabled_ways()) * config.block_bytes
        );
    });
}
