//! Streaming-vs-materialized equivalence: for the same `(spec, seed,
//! lengths)`, simulating through a resumable [`TraceStream`] must produce the
//! identical [`SimResult`] and hierarchy statistics as materializing the
//! trace first — the two `TraceSource` implementations are interchangeable
//! everywhere.

use rescache::prelude::*;
use rescache_trace::{TraceFormat, WorkloadRegistry};

fn engines() -> [CpuConfig; 2] {
    [CpuConfig::base_in_order(), CpuConfig::base_out_of_order()]
}

/// Runs one profile both ways on fresh hierarchies and asserts identical
/// results and statistics, under the given trace format.
fn assert_equivalent(
    profile: &rescache_trace::AppProfile,
    seed: u64,
    instructions: usize,
    format: TraceFormat,
) {
    let generator = TraceGenerator::new(profile.clone(), seed).with_format(format);
    for config in engines() {
        let sim = Simulator::new(config);

        let trace = generator.generate(instructions);
        let mut h_mat = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        let materialized = sim.run(&trace, &mut h_mat);

        let mut stream = generator.stream(instructions);
        let mut h_stream = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        let streamed = sim.run_source(&mut stream, &mut h_stream);

        let name = profile.name;
        assert_eq!(
            materialized, streamed,
            "{name} {format} ({config:?}): SimResult"
        );
        assert_eq!(
            h_mat.snapshot(),
            h_stream.snapshot(),
            "{name} {format} ({config:?}): hierarchy statistics"
        );
        assert_eq!(streamed.instructions, instructions as u64, "{name}");
    }
}

#[test]
fn registry_workloads_stream_and_materialize_identically() {
    let registry = WorkloadRegistry::builtin();
    // A cross-section of the registry: nominal behaviour, serial misses,
    // MSHR saturation, phase alternation — under the default (v2) format.
    for name in ["nominal", "pointer_chase", "mshr_burst", "phase_flip"] {
        let spec = registry.get(name).expect("registered workload");
        // Longer than two chunks so chunk boundaries are really crossed.
        assert_equivalent(
            &spec.profile(),
            42,
            2 * rescache_trace::CHUNK_RECORDS + 123,
            TraceFormat::default(),
        );
    }
}

#[test]
fn v1_format_streams_and_materializes_identically() {
    // The v1 differential kept alive: the streaming contract must hold for
    // the legacy bit stream too, so a v1-pinned replay (or an old store
    // entry) stays simulatable through either path.
    let registry = WorkloadRegistry::builtin();
    for name in ["nominal", "phase_flip"] {
        let spec = registry.get(name).expect("registered workload");
        assert_equivalent(
            &spec.profile(),
            42,
            rescache_trace::CHUNK_RECORDS + 123,
            TraceFormat::V1,
        );
    }
    assert_equivalent(&spec::gcc(), 7, 20_000, TraceFormat::V1);
}

#[test]
fn paper_profiles_stream_and_materialize_identically() {
    for profile in [spec::gcc(), spec::swim()] {
        assert_equivalent(&profile, 7, 30_000, TraceFormat::default());
    }
}

#[test]
fn trace_cursor_source_matches_direct_run() {
    // The materialized TraceSource impl itself must be transparent: running
    // through Trace::cursor equals running the trace directly.
    let trace = TraceGenerator::new(spec::vpr(), 3).generate(20_000);
    for config in engines() {
        let sim = Simulator::new(config);
        let mut h1 = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        let mut h2 = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        let direct = sim.run(&trace, &mut h1);
        let mut cursor = trace.cursor();
        let via_source = sim.run_source(&mut cursor, &mut h2);
        assert_eq!(direct, via_source);
        assert_eq!(h1.snapshot(), h2.snapshot());
    }
}

#[test]
fn streaming_respects_hooks() {
    // The hook path sees the same per-instruction sequence either way.
    struct CommitLog(Vec<(u64, u64)>);
    impl SimHook for CommitLog {
        fn post_commit(&mut self, committed: u64, cycle: u64, _h: &mut MemoryHierarchy) {
            if committed.is_multiple_of(1000) {
                self.0.push((committed, cycle));
            }
        }
    }
    let profile = spec::compress();
    let generator = TraceGenerator::new(profile, 9);
    let sim = Simulator::new(CpuConfig::base_out_of_order());

    let trace = generator.generate(10_000);
    let mut h1 = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
    let mut log1 = CommitLog(Vec::new());
    sim.run_with_hook(&trace, &mut h1, &mut log1);

    let mut stream = generator.stream(10_000);
    let mut h2 = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
    let mut log2 = CommitLog(Vec::new());
    sim.run_source_with_hook(&mut stream, &mut h2, &mut log2);

    assert_eq!(log1.0, log2.0);
    assert!(!log1.0.is_empty());
}
