//! The copy-free, cached trace path produces byte-identical results to a
//! freshly generated, owned trace.
//!
//! `Runner::trace` returns `Arc`-shared sub-slices of one generated buffer
//! and memoizes them per (application, seed, lengths); these tests pin down
//! that sharing is purely an optimization: the shared views equal owned
//! copies record-for-record, and measurements taken through the cached path
//! equal measurements taken from independently generated traces.

use rescache::core::experiment::{RunSetup, Runner, RunnerConfig};
use rescache::core::{CachePoint, SystemConfig};
use rescache::trace::{spec, Trace, TraceGenerator};

fn runner() -> Runner {
    Runner::new(RunnerConfig::fast())
}

/// Generates the same regions the runner serves, as owned copies.
fn owned_regions(config: &RunnerConfig, app: &rescache::trace::AppProfile) -> (Trace, Trace) {
    let total = config.warmup_instructions + config.measure_instructions;
    let full = TraceGenerator::new(app.clone(), config.trace_seed).generate(total);
    let warm = Trace::new(
        app.name,
        full.records()[..config.warmup_instructions].to_vec(),
    );
    let measure = Trace::new(
        app.name,
        full.records()[config.warmup_instructions..].to_vec(),
    );
    (warm, measure)
}

#[test]
fn shared_trace_views_equal_owned_copies() {
    let r = runner();
    for app in [spec::ammp(), spec::gcc(), spec::swim()] {
        let (warm, measure) = r.trace(&app);
        let (owned_warm, owned_measure) = owned_regions(r.config(), &app);
        assert_eq!(warm, owned_warm, "{}: warm region", app.name);
        assert_eq!(measure, owned_measure, "{}: measured region", app.name);
    }
}

#[test]
fn repeated_trace_requests_share_one_buffer() {
    let r = runner();
    let (warm_a, measure_a) = r.trace(&spec::vpr());
    let (warm_b, measure_b) = r.trace(&spec::vpr());
    // Same underlying allocation: the record slices point at the same memory.
    assert_eq!(warm_a.records().as_ptr(), warm_b.records().as_ptr());
    assert_eq!(measure_a.records().as_ptr(), measure_b.records().as_ptr());
    // And a clone of the runner shares the cache.
    let (warm_c, _) = r.clone().trace(&spec::vpr());
    assert_eq!(warm_a.records().as_ptr(), warm_c.records().as_ptr());
}

#[test]
fn same_named_but_different_profiles_do_not_alias() {
    use rescache::trace::InstructionMix;
    let r = runner();
    let base = spec::gcc();
    let tweaked = spec::gcc().with_mix(InstructionMix::new(0.05, 0.02, 0.01));
    assert_ne!(base.fingerprint(), tweaked.fingerprint());
    let (_, measure_base) = r.trace(&base);
    let (_, measure_tweaked) = r.trace(&tweaked);
    assert_ne!(
        measure_base, measure_tweaked,
        "a tweaked profile sharing a name must not be served the cached trace"
    );
}

#[test]
fn shared_traces_yield_identical_measurements() {
    let r = runner();
    let system = SystemConfig::base();
    let app = spec::m88ksim();

    let (warm, measure) = r.trace(&app);
    let (owned_warm, owned_measure) = owned_regions(r.config(), &app);

    let setup = RunSetup {
        d_static: Some(CachePoint { sets: 128, ways: 2 }),
        d_tag_bits: 2,
        ..RunSetup::default()
    };
    let from_shared = r.run(&warm, &measure, &system, &setup);
    let from_owned = r.run(&owned_warm, &owned_measure, &system, &setup);
    assert_eq!(
        from_shared, from_owned,
        "a shared trace view must measure identically to a fresh copy"
    );
}

#[test]
fn memoized_static_runs_match_uncached_runs() {
    let r = runner();
    let system = SystemConfig::base();
    let app = spec::su2cor();
    let point = CachePoint { sets: 256, ways: 2 };

    // Through the memoized path (twice: second hit comes from the cache).
    let cached_first = r.run_static(&app, &system, Some(point), None, 4, 0);
    let cached_second = r.run_static(&app, &system, Some(point), None, 4, 0);
    assert_eq!(cached_first, cached_second);

    // Through the generic uncached path with the same setup.
    let (warm, measure) = r.trace(&app);
    let setup = RunSetup {
        d_static: Some(point),
        d_tag_bits: 4,
        ..RunSetup::default()
    };
    let uncached = r.run(&warm, &measure, &system, &setup);
    assert_eq!(cached_first, uncached);

    // Different tag bits share the simulation but price differently.
    let repriced = r.run_static(&app, &system, Some(point), None, 0, 0);
    assert_eq!(repriced.cycles, cached_first.cycles);
    assert!(repriced.energy_pj < cached_first.energy_pj);
}
