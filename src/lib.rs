//! # rescache — resizable cache design-space exploration
//!
//! A from-scratch Rust reproduction of *"Exploiting Choice in Resizable Cache
//! Design to Optimize Deep-Submicron Processor Energy-Delay"* (Yang, Powell,
//! Falsafi, Vijaykumar — HPCA 2002), including every substrate the study
//! depends on: synthetic SPEC-like workloads, a resizable cache hierarchy,
//! in-order and out-of-order processor models, and a Wattch-style energy
//! model.
//!
//! This facade crate re-exports the workspace's public API under one roof and
//! hosts the runnable examples and cross-crate integration tests. The
//! individual crates are:
//!
//! * [`trace`] (`rescache-trace`) — workload profiles and trace generation.
//! * [`cache`] (`rescache-cache`) — the resizable cache hierarchy.
//! * [`cpu`] (`rescache-cpu`) — the two execution engines.
//! * [`energy`] (`rescache-energy`) — energy models and energy-delay metrics.
//! * [`core`] (`rescache-core`) — organizations, strategies and experiments.
//!
//! # Quick start
//!
//! ```
//! use rescache::core::experiment::{Runner, RunnerConfig};
//! use rescache::core::{CoreError, Organization, ResizableCacheSide, SystemConfig};
//! use rescache::trace::spec;
//!
//! # fn main() -> Result<(), CoreError> {
//! let runner = Runner::new(RunnerConfig::fast());
//! let outcome = runner.static_best(
//!     &spec::m88ksim(),
//!     &SystemConfig::base(),
//!     Organization::SelectiveSets,
//!     ResizableCacheSide::Data,
//! )?;
//! println!(
//!     "m88ksim: best d-cache size {:?}, energy-delay reduction {:.1} %",
//!     outcome.best.point,
//!     outcome.best.edp_reduction_percent
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rescache_cache as cache;
pub use rescache_core as core;
pub use rescache_cpu as cpu;
pub use rescache_energy as energy;
pub use rescache_trace as trace;

/// The most commonly used types, re-exported flat for convenience.
pub mod prelude {
    pub use rescache_cache::{Cache, CacheConfig, HierarchyConfig, MemoryHierarchy};
    pub use rescache_core::experiment::{
        Runner, RunnerConfig, ServeConfig, ServerHandle, SweepServer, TraceStore,
    };
    pub use rescache_core::{
        CachePoint, ConfigSpace, CoreError, DynamicController, DynamicParams, Organization,
        ResizableCacheSide, ResizeDecision, StaticSearch, SystemConfig,
    };
    pub use rescache_cpu::{CpuConfig, EngineKind, SimHook, SimResult, Simulator};
    pub use rescache_energy::{EnergyBreakdown, EnergyDelay, EnergyModel};
    pub use rescache_trace::{
        spec, AppProfile, Trace, TraceGenerator, TraceSource, TraceStream, WorkloadRegistry,
    };
}
