//! Compare the static (profile once, fix the size) and dynamic (miss-ratio
//! controller) resizing strategies on the two processor configurations of the
//! paper, for one application with a periodically varying working set.
//!
//! The dynamic candidate sweep streams its records from the trace store:
//! with `RESCACHE_TRACE_DIR` set, every controller run replays the persisted
//! entry chunk by chunk and no full-length trace is ever materialized.
//!
//! Run with: `cargo run --release --example static_vs_dynamic`

use rescache::prelude::*;

fn report(
    runner: &Runner,
    system: &SystemConfig,
    label: &str,
    app: &AppProfile,
) -> Result<(), CoreError> {
    let side = ResizableCacheSide::Data;
    let org = Organization::SelectiveSets;
    let static_outcome = runner.static_best(app, system, org, side)?;
    let static_best_bytes = static_outcome
        .best
        .point
        .map(|p| p.bytes(32))
        .unwrap_or(32 * 1024);
    let dynamic_outcome = runner.dynamic_best_with_size_bounds(
        app,
        system,
        org,
        side,
        &[
            static_best_bytes,
            static_best_bytes / 2,
            static_best_bytes / 4,
            1,
        ],
    )?;
    println!("{label}:");
    println!(
        "  static : best size {:>5.1} KiB, energy-delay reduction {:>5.1} %, slowdown {:>4.1} %",
        static_outcome.best.measurement.l1d_mean_bytes / 1024.0,
        static_outcome.best.edp_reduction_percent,
        static_outcome.best.slowdown_percent
    );
    println!(
        "  dynamic: mean size {:>5.1} KiB, energy-delay reduction {:>5.1} %, slowdown {:>4.1} %, {} resizes",
        dynamic_outcome.best.measurement.l1d_mean_bytes / 1024.0,
        dynamic_outcome.best.edp_reduction_percent,
        dynamic_outcome.best.slowdown_percent,
        dynamic_outcome.best.measurement.l1d_resizes
    );
    Ok(())
}

fn main() -> Result<(), CoreError> {
    // su2cor's data working set alternates between a small and a large phase,
    // which is exactly the behaviour dynamic resizing is meant to exploit.
    let app = spec::su2cor();
    let runner = Runner::new(RunnerConfig {
        warmup_instructions: 50_000,
        measure_instructions: 400_000,
        trace_seed: 42,
        dynamic_interval: 4_096,
        ..RunnerConfig::fast()
    });

    println!(
        "application: {} (periodic data working set, {:.1} KiB on average)",
        app.name,
        app.mean_data_working_set() / 1024.0
    );
    println!();
    report(
        &runner,
        &SystemConfig::in_order(),
        "in-order issue, blocking d-cache (miss latency exposed)",
        &app,
    )?;
    println!();
    report(
        &runner,
        &SystemConfig::base(),
        "out-of-order issue, non-blocking d-cache (miss latency largely hidden)",
        &app,
    )?;
    Ok(())
}
