//! Explore the configuration spaces of the three resizable-cache
//! organizations (the paper's Table 1) and verify the hybrid organization's
//! "always at least as good" property on a single application.
//!
//! Run with: `cargo run --release --example hybrid_granularity`

use rescache::core::org::hybrid_grid;
use rescache::prelude::*;

fn main() -> Result<(), CoreError> {
    let config = CacheConfig::l1_default(32 * 1024, 4);

    // 1. The size spectra each organization offers for a 32K 4-way cache.
    println!("offered sizes for a 32K 4-way L1 with 1 KiB subarrays:");
    for org in Organization::ALL {
        let space = ConfigSpace::enumerate(config, org)?;
        let sizes: Vec<String> = space
            .sizes_bytes()
            .iter()
            .map(|b| format!("{}K", b / 1024))
            .collect();
        println!("  {:<15} {}", org.label(), sizes.join(", "));
    }

    // 2. The full hybrid grid, as in the paper's Table 1.
    println!();
    println!("{}", hybrid_grid(config)?.render());

    // 3. Compare the three organizations on an application whose working set
    //    (~6 KiB) falls between the selective-sets points: the hybrid's 6K
    //    configuration pays off.
    let runner = Runner::new(RunnerConfig::fast());
    let system = SystemConfig::with_l1(32 * 1024, 4);
    println!("static resizing of the d-cache for ijpeg (working set between offered sizes):");
    for org in Organization::ALL {
        let outcome = runner.static_best(&spec::ijpeg(), &system, org, ResizableCacheSide::Data)?;
        let best_kib = outcome.best.point.map(|p| p.bytes(32) / 1024).unwrap_or(32);
        println!(
            "  {:<15} best size {:>2} KiB, energy-delay reduction {:>5.1} %",
            org.label(),
            best_kib,
            outcome.best.edp_reduction_percent
        );
    }
    Ok(())
}
