//! Resize the d-cache alone, the i-cache alone, and both caches together,
//! demonstrating the additivity result of the paper's Figure 9 on a small set
//! of applications.
//!
//! Run with: `cargo run --release --example dual_resizing`

use rescache::core::experiment::dual_resizing;
use rescache::prelude::*;

fn main() -> Result<(), CoreError> {
    let runner = Runner::new(RunnerConfig {
        warmup_instructions: 50_000,
        measure_instructions: 300_000,
        trace_seed: 42,
        dynamic_interval: 4_096,
        ..RunnerConfig::fast()
    });
    let apps = vec![spec::ammp(), spec::m88ksim(), spec::ijpeg(), spec::su2cor()];

    let rows = dual_resizing(
        &runner,
        &apps,
        &SystemConfig::base(),
        Organization::SelectiveSets,
    )?;

    println!("static selective-sets resizing on the base out-of-order system (32K 2-way L1s):");
    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>12}",
        "app", "d-cache alone", "i-cache alone", "both", "d+i stacked"
    );
    for (outcome, row) in &rows {
        println!(
            "{:<10} {:>13.1}% {:>13.1}% {:>13.1}% {:>11.1}%",
            outcome.app,
            row.d_alone_edp_reduction,
            row.i_alone_edp_reduction,
            row.both_edp_reduction,
            row.stacked_edp_reduction()
        );
    }
    println!();
    println!("The 'both' column should be close to the stacked sum of the individual");
    println!("savings: the two caches' resizings are essentially decoupled (additive).");
    Ok(())
}
