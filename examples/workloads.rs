//! Tour of the workload registry: stream every registered scenario through
//! both execution engines and print how each stress pattern lands.
//!
//! Each workload is simulated through the streaming path
//! ([`Simulator::run_source`] over a [`TraceStream`]), so no trace is ever
//! materialized — generation and simulation interleave chunk by chunk.
//!
//! Run with: `cargo run --release --example workloads`

use rescache::prelude::*;

fn main() {
    let instructions = 200_000;
    let registry = WorkloadRegistry::builtin();
    println!(
        "{} registered workloads, {} instructions each (streamed, nothing materialized):",
        registry.len(),
        instructions
    );
    println!();
    println!(
        "{:<16} {:>8} {:>8} {:>9} {:>9} {:>9}  intent",
        "workload", "ooo IPC", "ino IPC", "l1d miss", "l1i miss", "mispred"
    );

    for spec in registry.specs() {
        let profile = spec.profile();
        let generator = TraceGenerator::new(profile, 42);

        let mut ooo_h = MemoryHierarchy::new(HierarchyConfig::base()).expect("base hierarchy");
        let ooo = Simulator::new(CpuConfig::base_out_of_order())
            .run_source(&mut generator.stream(instructions), &mut ooo_h);

        let mut ino_h = MemoryHierarchy::new(HierarchyConfig::base()).expect("base hierarchy");
        let ino = Simulator::new(CpuConfig::base_in_order())
            .run_source(&mut generator.stream(instructions), &mut ino_h);

        println!(
            "{:<16} {:>8.2} {:>8.2} {:>8.1}% {:>8.1}% {:>8.1}%  {}",
            spec.name,
            ooo.ipc(),
            ino.ipc(),
            ooo_h.l1d().stats().miss_ratio() * 100.0,
            ooo_h.l1i().stats().miss_ratio() * 100.0,
            ooo.branch.mispredict_ratio() * 100.0,
            spec.intent
        );
    }

    println!();
    println!(
        "(out-of-order: 4-wide, 64 ROB, 8 MSHRs; in-order: blocking d-cache. \
         Both over the paper's base 32K/32K/512K hierarchy.)"
    );
}
