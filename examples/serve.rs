//! The sweep service as a process: serve the JSON-lines protocol over a
//! shared store/memo tier, so many clients (or many terminals) share one
//! pool of traces and simulation results.
//!
//! Run a long-lived server (address from `RESCACHE_SERVE_ADDR`, default
//! `127.0.0.1:7878`; runner knobs from the usual `RESCACHE_*` variables):
//!
//! ```text
//! cargo run --release --example serve
//! ```
//!
//! Then talk to it from any line client, e.g.:
//!
//! ```text
//! printf '{"req":"sweep","app":"gcc","org":"selective_sets"}\n' | nc 127.0.0.1 7878
//! ```
//!
//! Or run the self-contained demo — an ephemeral server plus a scripted
//! client exercising ping, a point, a streamed sweep (once under the
//! default EDP objective, once re-ranked latency-first with
//! `"objective":"delay"`), a cancelled sweep, a streamed `dynamic` run,
//! health and shutdown:
//!
//! ```text
//! cargo run --release --example serve -- --demo
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use rescache::core::json::Json;
use rescache::prelude::*;

fn main() -> std::io::Result<()> {
    if std::env::args().any(|a| a == "--demo") {
        demo()
    } else {
        let runner = Runner::new(RunnerConfig::from_env());
        let server = SweepServer::bind(runner, ServeConfig::from_env())?;
        println!(
            "rescache sweep service listening on {}",
            server.local_addr()?
        );
        println!("send {{\"req\":\"shutdown\"}} to stop it.");
        server.serve()
    }
}

/// One scripted client session against an ephemeral in-process server.
fn demo() -> std::io::Result<()> {
    // Long enough per-point that a pipelined cancel always lands before a
    // worker can walk the whole space, short enough to stay demo-quick.
    let runner = Runner::new(RunnerConfig {
        measure_instructions: 120_000,
        ..RunnerConfig::fast()
    });
    // One worker keeps the cancelled-sweep exchange deterministic: after
    // the cancel is consumed, at most the single in-flight point finishes.
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        ..ServeConfig::default()
    };
    let server = SweepServer::bind(runner, config)?;
    let addr = server.local_addr()?;
    let (_handle, join) = server.spawn()?;
    println!("demo server on {addr}");

    let stream = TcpStream::connect(addr)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut line = String::new();
    exchange(&mut writer, &mut reader, r#"{"req":"ping","id":1}"#)?;
    exchange(
        &mut writer,
        &mut reader,
        r#"{"req":"point","id":2,"app":"gcc"}"#,
    )?;

    // A sweep streams one result line per point, then a "done" summary.
    writeln!(
        writer,
        r#"{{"req":"sweep","id":3,"app":"gcc","org":"selective_sets"}}"#
    )?;
    println!(r#"> {{"req":"sweep","id":3,"app":"gcc","org":"selective_sets"}}"#);
    loop {
        line.clear();
        reader.read_line(&mut line)?;
        println!("< {}", line.trim_end());
        let response = Json::parse(line.trim_end()).expect("server speaks valid JSON");
        if response.get("kind").and_then(Json::as_str) == Some("result") {
            // Every result line carries the latency-domain block.
            assert!(
                response.get("latency").is_some(),
                "result lines render the latency block"
            );
        }
        if response.get("kind").and_then(Json::as_str) == Some("done") {
            break;
        }
    }

    // The same sweep re-ranked latency-first: the measurements coalesce on
    // the tier's memos (no re-simulation), only the "done" ranking changes.
    writeln!(
        writer,
        r#"{{"req":"sweep","id":4,"app":"gcc","org":"selective_sets","objective":"delay"}}"#
    )?;
    println!(
        r#"> {{"req":"sweep","id":4,"app":"gcc","org":"selective_sets","objective":"delay"}}"#
    );
    loop {
        line.clear();
        reader.read_line(&mut line)?;
        println!("< {}", line.trim_end());
        let response = Json::parse(line.trim_end()).expect("server speaks valid JSON");
        if response.get("kind").and_then(Json::as_str) == Some("done") {
            assert_eq!(
                response.get("objective").and_then(Json::as_str),
                Some("delay"),
                "the done summary names the objective that ranked it"
            );
            break;
        }
    }

    // A cancelled sweep: the cancel rides the same pipe right behind the
    // sweep, so the server consumes it before streaming and parks the
    // shared cursor — only the in-flight point finishes. A fresh app keeps
    // the points unmemoized, so the single worker cannot outrun the cancel.
    let sweep_then_cancel = concat!(
        r#"{"req":"sweep","id":5,"app":"vortex","org":"selective_sets"}"#,
        "\n",
        r#"{"req":"cancel","id":5}"#
    );
    writeln!(writer, "{sweep_then_cancel}")?;
    println!(r#"> {{"req":"sweep","id":5,"app":"vortex","org":"selective_sets"}}"#);
    println!(r#"> {{"req":"cancel","id":5}}"#);
    loop {
        line.clear();
        reader.read_line(&mut line)?;
        println!("< {}", line.trim_end());
        let response = Json::parse(line.trim_end()).expect("server speaks valid JSON");
        assert_ne!(
            response.get("kind").and_then(Json::as_str),
            Some("done"),
            "the pipelined cancel reaches the server before the sweep finishes"
        );
        if response.get("kind").and_then(Json::as_str) == Some("cancelled") {
            let points = response.get("points").and_then(Json::as_u64).unwrap_or(0);
            let space = response
                .get("space_points")
                .and_then(Json::as_u64)
                .unwrap_or(0);
            assert!(
                points < space,
                "a cancelled sweep evaluates fewer points than the space \
                 ({points} of {space})"
            );
            break;
        }
    }

    // A dynamic run streams one line per resize decision, then a done line
    // matching what the in-process `Runner::run_dynamic` would report.
    writeln!(writer, r#"{{"req":"dynamic","id":6,"app":"gcc"}}"#)?;
    println!(r#"> {{"req":"dynamic","id":6,"app":"gcc"}}"#);
    loop {
        line.clear();
        reader.read_line(&mut line)?;
        println!("< {}", line.trim_end());
        let response = Json::parse(line.trim_end()).expect("server speaks valid JSON");
        if response.get("kind").and_then(Json::as_str) == Some("done") {
            assert!(
                response.get("params").is_some() && response.get("decisions").is_some(),
                "the dynamic done line reports the controller parameters"
            );
            break;
        }
    }

    exchange(&mut writer, &mut reader, r#"{"req":"health","id":7}"#)?;
    let bye = exchange(&mut writer, &mut reader, r#"{"req":"shutdown","id":8}"#)?;
    assert_eq!(bye.get("kind").and_then(Json::as_str), Some("bye"));
    drop(writer);

    join.join().expect("server thread exits cleanly");
    println!("server drained; demo complete.");
    Ok(())
}

/// Sends one request line, prints and parses the one-line response.
fn exchange(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    request: &str,
) -> std::io::Result<Json> {
    writeln!(writer, "{request}")?;
    let mut line = String::new();
    reader.read_line(&mut line)?;
    println!("> {request}");
    println!("< {}", line.trim_end());
    Ok(Json::parse(line.trim_end()).expect("server speaks valid JSON"))
}
