//! Quick start: simulate one application on the paper's base system, print
//! the energy breakdown, then resize the d-cache statically and show the
//! energy-delay effect.
//!
//! Run with: `cargo run --release --example quickstart`

use rescache::prelude::*;

fn main() -> Result<(), CoreError> {
    // 1. Pick an application profile (the synthetic stand-in for SPEC95 gcc)
    //    and generate a deterministic instruction trace.
    let profile = spec::gcc();
    let trace = TraceGenerator::new(profile.clone(), 42).generate(200_000);
    println!(
        "generated {} instructions for {} ({:.1} KiB mean data working set)",
        trace.len(),
        trace.name(),
        profile.mean_data_working_set() / 1024.0
    );

    // 2. Simulate it on the base out-of-order processor with full-size caches.
    let system = SystemConfig::base();
    let mut hierarchy = MemoryHierarchy::new(system.hierarchy).expect("base hierarchy is valid");
    let sim = Simulator::new(system.cpu);
    let result = sim.run(&trace, &mut hierarchy);
    let model = EnergyModel::for_hierarchy(&system.hierarchy);
    let breakdown = model.breakdown(&result, &hierarchy);
    println!(
        "baseline: {} cycles (IPC {:.2}), d-cache miss ratio {:.1} %",
        result.cycles,
        result.ipc(),
        hierarchy.l1d().stats().miss_ratio() * 100.0
    );
    println!(
        "energy breakdown: d-cache {:.1} %, i-cache {:.1} %, total {:.2e} pJ",
        breakdown.l1d_fraction() * 100.0,
        breakdown.l1i_fraction() * 100.0,
        breakdown.total_pj()
    );

    // 3. Ask the experiment runner for the best static selective-sets d-cache
    //    size for this application (the paper's static resizing strategy).
    let runner = Runner::new(RunnerConfig::fast());
    let outcome = runner.static_best(
        &profile,
        &system,
        Organization::SelectiveSets,
        ResizableCacheSide::Data,
    )?;
    println!();
    println!("static selective-sets search over the 32K 2-way d-cache:");
    for (point, measurement) in &outcome.evaluated {
        println!(
            "  {:>5} KiB -> energy-delay {:+.1} % vs base, slowdown {:+.1} %",
            point.bytes(32) / 1024,
            measurement
                .energy_delay()
                .reduction_vs(&outcome.base.energy_delay()),
            measurement
                .energy_delay()
                .slowdown_vs(&outcome.base.energy_delay()),
        );
    }
    println!(
        "best point: {:?} -> {:.1} % energy-delay reduction with {:.1} % slowdown",
        outcome.best.point, outcome.best.edp_reduction_percent, outcome.best.slowdown_percent
    );
    Ok(())
}
