#!/usr/bin/env sh
# I/O discipline gate: the store/codec layers must never unwrap or expect
# an I/O result — every filesystem failure has a typed recovery path
# (retry, quarantine, or degradation to in-memory operation). This check
# scans the non-test region of each file (everything before the first
# `#[cfg(test)]`) for `.unwrap()` / `.expect(`; poison-recovery idioms
# such as `.unwrap_or_else(PoisonError::into_inner)` are intentionally
# not matched.
#
# Run from the repository root: sh ci/check_io_discipline.sh
set -eu

status=0
for file in \
    crates/trace/src/codec.rs \
    crates/trace/src/compress.rs \
    crates/trace/src/faults.rs \
    crates/core/src/experiment/trace_store.rs \
    crates/core/src/experiment/shared_tier.rs \
    crates/core/src/experiment/server.rs \
    crates/core/src/json.rs
do
    if [ ! -f "$file" ]; then
        echo "check_io_discipline: missing $file" >&2
        status=1
        continue
    fi
    hits=$(awk '/^#\[cfg\(test\)\]/ { exit } /\.unwrap\(\)|\.expect\(/ { printf "%s:%d: %s\n", FILENAME, NR, $0 }' "$file")
    if [ -n "$hits" ]; then
        echo "check_io_discipline: unwrap/expect in the I/O path of $file:" >&2
        echo "$hits" >&2
        status=1
    fi
done

if [ "$status" -ne 0 ]; then
    echo "check_io_discipline: FAILED — route the failure through IoPolicy retry/quarantine/degradation instead" >&2
else
    echo "check_io_discipline: OK"
fi
exit "$status"
